//! b-transformation sequences — the equivalence the correctness proof of
//! Section 4 relies on.
//!
//! When a node `i` issues a request, the transit nodes on its path each
//! perform *half* of a b-transformation immediately, and `i` performs the
//! other half when the token arrives. Section 4 shows the net effect equals
//! a *sequence of whole b-transformations* walking `i` up its boundary
//! prefix. This module implements those whole-sequence operations so tests
//! and oracles can compare the distributed algorithm's final tree against
//! the sequential specification.

use crate::{NodeId, OpenCube, TopologyError};

/// All boundary edges `(son, father)` of the current tree, in identity
/// order of the son.
///
/// The boundary edges are exactly the legal b-transformations; there is one
/// per node of power ≥ 1, i.e. `n - n/2 = n/2`... more precisely one per
/// non-leaf node.
#[must_use]
pub fn boundary_edges(cube: &OpenCube) -> Vec<(NodeId, NodeId)> {
    cube.iter_nodes().filter_map(|f| cube.last_son(f).map(|s| (s, f))).collect()
}

/// The maximal *boundary prefix* of the branch from `i` to the root: the
/// nodes `i = i0, i1, ..., ik` such that every edge `(i_l, i_{l+1})` with
/// `l < k` is a boundary edge, ending at the first node whose upward edge is
/// not a boundary edge (or at the root).
///
/// This is exactly the set of transit nodes a request from `i` traverses
/// (plus `i` itself); `i_k` is the proxy (or the root).
#[must_use]
pub fn boundary_prefix(cube: &OpenCube, i: NodeId) -> Vec<NodeId> {
    let mut prefix = vec![i];
    let mut cur = i;
    while let Some(f) = cube.father(cur) {
        if cube.is_boundary_edge(cur, f) {
            prefix.push(f);
            cur = f;
        } else {
            break;
        }
    }
    prefix
}

/// Applies the net tree transformation caused by a (failure-free,
/// uncontended) request from `i`, per the two cases of Section 4:
///
/// * if the whole path `i .. root` consists of boundary edges, `i` becomes
///   the new root (case 1, Figure 9);
/// * otherwise `i` becomes the last son of its closest proxy ancestor
///   `i_k` — the first node reached over a non-boundary edge (case 2).
///
/// Returns the node that ends up as `i`'s father (`None` if `i` became the
/// root).
///
/// # Errors
///
/// Propagates [`TopologyError`] if an internal swap is rejected — which
/// would indicate a bug, since the prefix is boundary by construction.
pub fn apply_request_transformation(
    cube: &mut OpenCube,
    i: NodeId,
) -> Result<Option<NodeId>, TopologyError> {
    // Walk i up through its boundary prefix one b-transformation at a time.
    // After each swap, i's former grandfather becomes its father, and the
    // next prefix edge is again a boundary edge (Theorem 2.1 keeps powers
    // aligned), so the loop re-tests at each step.
    loop {
        match cube.father(i) {
            None => return Ok(None),
            Some(f) => {
                if cube.is_boundary_edge(i, f) {
                    cube.b_transform(i, f)?;
                } else {
                    return Ok(Some(f));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_edge_count() {
        // Every node of power >= 1 has exactly one last son, so the number
        // of boundary edges equals the number of non-leaf nodes: n/2 in a
        // canonical cube (identities with even zero-based index... actually
        // nodes of power >= 1).
        for p in 1..=8 {
            let n = 1usize << p;
            let cube = OpenCube::canonical(n);
            let edges = boundary_edges(&cube);
            let non_leaves = cube.iter_nodes().filter(|i| cube.power(*i) >= 1).count();
            assert_eq!(edges.len(), non_leaves);
            for (s, f) in edges {
                assert!(cube.is_boundary_edge(s, f));
            }
        }
    }

    #[test]
    fn figure_9_full_boundary_path() {
        // In the canonical 16-cube, the path 16 -> 15 -> 13 -> 9 -> 1 is all
        // boundary edges; after the request transformation node 16 is root.
        let mut cube = OpenCube::canonical(16);
        let prefix: Vec<u32> =
            boundary_prefix(&cube, NodeId::new(16)).into_iter().map(NodeId::get).collect();
        assert_eq!(prefix, vec![16, 15, 13, 9, 1]);
        let father = apply_request_transformation(&mut cube, NodeId::new(16)).unwrap();
        assert_eq!(father, None);
        assert_eq!(cube.root(), NodeId::new(16));
        assert!(cube.verify().is_ok());
        // Final fathers per Figure 9: each former ancestor now points at 16.
        assert_eq!(cube.father(NodeId::new(15)), Some(NodeId::new(16)));
        assert_eq!(cube.father(NodeId::new(13)), Some(NodeId::new(16)));
        assert_eq!(cube.father(NodeId::new(9)), Some(NodeId::new(16)));
        assert_eq!(cube.father(NodeId::new(1)), Some(NodeId::new(16)));
    }

    #[test]
    fn proxy_stops_the_walk() {
        // Node 8's path in the 16-cube: 8 ->(boundary) 7 ->(boundary) 5
        // ->(non-boundary? dist(5,1)=3, power(5)=2 -> boundary!) Let's check
        // node 6: 6 -> 5 with dist(6,5)=1, power(6)=0 -> boundary iff
        // power(5) = 1; power(5)=2, so NOT boundary: 5 acts as proxy for 6.
        let mut cube = OpenCube::canonical(16);
        let prefix: Vec<u32> =
            boundary_prefix(&cube, NodeId::new(6)).into_iter().map(NodeId::get).collect();
        assert_eq!(prefix, vec![6]);
        let father = apply_request_transformation(&mut cube, NodeId::new(6)).unwrap();
        assert_eq!(father, Some(NodeId::new(5)));
        // 6 did not move: its first upward edge was already non-boundary.
        assert_eq!(cube, OpenCube::canonical(16));
    }

    #[test]
    fn partial_boundary_walk() {
        // Node 8: 8->7 boundary (power(7)=1? dist(8,7)=1, power(8)=0 ->
        // boundary iff power(7)=power(8)+1=1; power(7) = dist(7,5)-1 = 1.
        // yes). 7->5: dist(7,5)=2, power(7)=1 -> boundary iff power(5)=2:
        // yes. 5->1: dist(5,1)=3, power(5)=2 -> boundary iff power(1)=3:
        // power(1)=4, NOT boundary. So 8 walks past 7 and 5, then 1 is its
        // proxy... wait: after 8 swaps with 7 and 5, its father is 1 and
        // power(8)=2; the edge (8,1) has dist 3, power(1)=4 -> non-boundary.
        let mut cube = OpenCube::canonical(16);
        let father = apply_request_transformation(&mut cube, NodeId::new(8)).unwrap();
        assert_eq!(father, Some(NodeId::new(1)));
        assert!(cube.verify().is_ok());
        assert_eq!(cube.power(NodeId::new(8)), 2);
        assert_eq!(cube.father(NodeId::new(7)), Some(NodeId::new(8)));
        assert_eq!(cube.father(NodeId::new(5)), Some(NodeId::new(8)));
    }

    #[test]
    fn request_transformation_preserves_invariant_everywhere() {
        for start in 1..=32u32 {
            let mut cube = OpenCube::canonical(32);
            apply_request_transformation(&mut cube, NodeId::new(start)).unwrap();
            assert!(cube.verify().is_ok(), "after request from {start}");
        }
    }
}

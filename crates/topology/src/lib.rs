//! # oc-topology — the open-cube rooted tree
//!
//! This crate implements the *open-cube* structure of Hélary & Mostefaoui
//! (INRIA RR-2041, 1993), Section 2: a rooted tree on `n = 2^p` nodes
//! obtained from the `p`-dimensional hypercube by removing edges, defined
//! recursively as two `(n/2)`-open-cubes whose roots are joined by one
//! directed edge.
//!
//! The structure has two properties the mutual-exclusion algorithm builds on:
//!
//! * **Bounded branches** (Prop. 2.3): every root-to-leaf branch has length
//!   at most `log2 n`, which caps the worst-case message cost per request.
//! * **Stability & locality** (Thm. 2.1, Cors. 2.2–2.3): swapping a node with
//!   its *last son* (a *b-transformation*) preserves the open-cube shape, all
//!   p-groups, and all pairwise distances. Distances are therefore constants
//!   of the system and can be computed with bit arithmetic.
//!
//! ## Quick tour
//!
//! ```
//! use oc_topology::{OpenCube, NodeId};
//!
//! // The canonical 16-open-cube of the paper's Figure 2d.
//! let cube = OpenCube::canonical(16);
//! let n1 = NodeId::new(1);
//! let n9 = NodeId::new(9);
//! assert_eq!(cube.root(), n1);
//! assert_eq!(cube.power(n1), 4);
//! assert_eq!(cube.power(n9), 3);
//! assert_eq!(oc_topology::dist(n1, n9), 4);
//! assert!(cube.verify().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod node_id;

pub mod branch;
pub mod canonical;
pub mod distance;
pub mod groups;
pub mod hypercube;
pub mod invariant;
pub mod transform;
pub mod tree;

pub use branch::{branch_to_root, longest_branch_len};
pub use canonical::{canonical_father, canonical_power, canonical_sons};
pub use distance::{dist, nodes_at_distance, ring_iter, ring_size, RingIter};
pub use error::{StructureError, TopologyError};
pub use groups::{group_of, group_root, p_group};
pub use node_id::NodeId;
pub use tree::OpenCube;

/// Returns `true` if `n` is a valid open-cube size (a power of two, ≥ 1).
///
/// The paper assumes `n = 2^p` throughout; all constructors in this crate
/// enforce it.
///
/// ```
/// assert!(oc_topology::is_valid_size(8));
/// assert!(!oc_topology::is_valid_size(12));
/// assert!(!oc_topology::is_valid_size(0));
/// ```
pub fn is_valid_size(n: usize) -> bool {
    n >= 1 && n.is_power_of_two()
}

/// The dimension `p = log2 n` of an `n`-open-cube.
///
/// # Panics
///
/// Panics if `n` is not a power of two (see [`is_valid_size`]).
///
/// ```
/// assert_eq!(oc_topology::dimension(16), 4);
/// ```
pub fn dimension(n: usize) -> u32 {
    assert!(is_valid_size(n), "open-cube size must be a power of two, got {n}");
    n.trailing_zeros()
}

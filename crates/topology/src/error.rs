use core::fmt;

use crate::NodeId;

/// Error raised when a tree fails the open-cube structural invariant.
///
/// Produced by [`crate::OpenCube::verify`] and the checks in
/// [`crate::invariant`]. Each variant pinpoints the first violated clause of
/// the recursive definition of Section 2 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructureError {
    /// The node count is not a power of two.
    InvalidSize(usize),
    /// The father pointers contain a cycle through this node.
    Cycle(NodeId),
    /// More than one node has `father = nil`.
    MultipleRoots(NodeId, NodeId),
    /// No node has `father = nil`.
    NoRoot,
    /// A node's power, recomputed from the tree shape, disagrees with the
    /// power required by the open-cube definition.
    WrongPower {
        /// The offending node.
        node: NodeId,
        /// Power implied by the tree shape.
        actual: u32,
        /// Power required at this position.
        expected: u32,
    },
    /// A node's sons do not have the required powers `0..power(node)`.
    BadSonPowers {
        /// The offending father.
        node: NodeId,
        /// The sorted list of its sons' powers.
        son_powers: Vec<u32>,
    },
    /// An edge `(son, father)` joins nodes whose distance contradicts
    /// Prop. 2.1 (`power(son) = dist(son, father) - 1`).
    DistanceMismatch {
        /// The son of the offending edge.
        son: NodeId,
        /// The father of the offending edge.
        father: NodeId,
    },
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::InvalidSize(n) => {
                write!(f, "open-cube size must be a power of two, got {n}")
            }
            StructureError::Cycle(node) => {
                write!(f, "father pointers contain a cycle through node {node}")
            }
            StructureError::MultipleRoots(a, b) => {
                write!(f, "multiple roots: nodes {a} and {b} both have no father")
            }
            StructureError::NoRoot => write!(f, "no node has father = nil"),
            StructureError::WrongPower { node, actual, expected } => {
                write!(f, "node {node} has power {actual} but the structure requires {expected}")
            }
            StructureError::BadSonPowers { node, son_powers } => {
                write!(f, "node {node} has sons with powers {son_powers:?}, expected 0..power")
            }
            StructureError::DistanceMismatch { son, father } => {
                write!(f, "edge ({son}, {father}) violates power(son) = dist(son, father) - 1")
            }
        }
    }
}

impl std::error::Error for StructureError {}

/// Error raised by fallible topology operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A b-transformation was requested over an edge that is not a boundary
    /// edge (Theorem 2.1 shows this would destroy the open-cube shape).
    NotBoundaryEdge {
        /// The son of the rejected edge.
        son: NodeId,
        /// The father of the rejected edge.
        father: NodeId,
    },
    /// The named node is outside the tree's `1..=n` range.
    UnknownNode(NodeId),
    /// The pair is not a father/son edge of the current tree.
    NotAnEdge {
        /// Claimed son.
        son: NodeId,
        /// Claimed father.
        father: NodeId,
    },
    /// The structural invariant is broken (wraps the detailed report).
    Structure(StructureError),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NotBoundaryEdge { son, father } => {
                write!(f, "edge ({son}, {father}) is not a boundary edge")
            }
            TopologyError::UnknownNode(node) => write!(f, "unknown node {node}"),
            TopologyError::NotAnEdge { son, father } => {
                write!(f, "({son}, {father}) is not an edge of the tree")
            }
            TopologyError::Structure(err) => write!(f, "structural invariant violated: {err}"),
        }
    }
}

impl std::error::Error for TopologyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TopologyError::Structure(err) => Some(err),
            _ => None,
        }
    }
}

impl From<StructureError> for TopologyError {
    fn from(err: StructureError) -> Self {
        TopologyError::Structure(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = StructureError::InvalidSize(12);
        assert!(err.to_string().contains("12"));
        let err = TopologyError::UnknownNode(NodeId::new(99));
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn structure_error_converts() {
        let err: TopologyError = StructureError::NoRoot.into();
        assert!(matches!(err, TopologyError::Structure(StructureError::NoRoot)));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StructureError>();
        assert_send_sync::<TopologyError>();
    }
}

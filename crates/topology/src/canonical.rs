//! Closed forms for the *canonical* open-cube — the initial tree of the
//! paper's Figures 2a–2d, before any b-transformation.
//!
//! Writing `z = id - 1` for the 0-based index of a node, the recursive
//! construction (two `(n/2)`-cubes on the lower and upper half of the id
//! range, upper root pointing at lower root) collapses to bit arithmetic:
//!
//! * `father(id)` clears the **lowest set bit** of `z` (node 1, `z = 0`, is
//!   the root);
//! * `power(id)` is the number of trailing zeros of `z` (and `log2 n` for the
//!   root);
//! * the sons of `id` are `z + 2^k` for `k = 0 .. power(id)`.
//!
//! These formulas are validated against the recursive definition in this
//! module's tests and in property tests.

use crate::{dimension, NodeId};

/// Father of `id` in the canonical `n`-open-cube, or `None` for the root
/// (node 1).
///
/// # Panics
///
/// Panics if `n` is not a power of two or `id > n`.
///
/// ```
/// use oc_topology::{canonical_father, NodeId};
/// // Figure 2c: in the 8-open-cube, father(7) = 5 and father(5) = 1.
/// assert_eq!(canonical_father(8, NodeId::new(7)), Some(NodeId::new(5)));
/// assert_eq!(canonical_father(8, NodeId::new(5)), Some(NodeId::new(1)));
/// assert_eq!(canonical_father(8, NodeId::new(1)), None);
/// ```
#[must_use]
pub fn canonical_father(n: usize, id: NodeId) -> Option<NodeId> {
    let _ = dimension(n);
    assert!((id.get() as usize) <= n, "node {id} outside 1..={n}");
    let z = id.zero_based();
    if z == 0 {
        None
    } else {
        Some(NodeId::from_zero_based(z & (z - 1)))
    }
}

/// Power of `id` in the canonical `n`-open-cube (Definition 2.1: the greatest
/// `p` such that `id` roots a p-group).
///
/// # Panics
///
/// Panics if `n` is not a power of two or `id > n`.
///
/// ```
/// use oc_topology::{canonical_power, NodeId};
/// // Figure 2d commentary: node 1 has power 4, node 2 power 0,
/// // node 3 power 1, node 5 power 2, node 9 power 3.
/// assert_eq!(canonical_power(16, NodeId::new(1)), 4);
/// assert_eq!(canonical_power(16, NodeId::new(2)), 0);
/// assert_eq!(canonical_power(16, NodeId::new(3)), 1);
/// assert_eq!(canonical_power(16, NodeId::new(5)), 2);
/// assert_eq!(canonical_power(16, NodeId::new(9)), 3);
/// ```
#[must_use]
pub fn canonical_power(n: usize, id: NodeId) -> u32 {
    let p = dimension(n);
    assert!((id.get() as usize) <= n, "node {id} outside 1..={n}");
    let z = id.zero_based();
    if z == 0 {
        p
    } else {
        z.trailing_zeros()
    }
}

/// Sons of `id` in the canonical `n`-open-cube, in increasing power order
/// (power `0` first, the *last son* — power `power(id) - 1` — last).
///
/// A node of power `p` has exactly `p` sons with powers `0..p`
/// (observation after Definition 2.1).
///
/// # Panics
///
/// Panics if `n` is not a power of two or `id > n`.
///
/// ```
/// use oc_topology::{canonical_sons, NodeId};
/// // Figure 2d: the sons of node 1 are 2 (power 0), 3 (power 1),
/// // 5 (power 2) and 9 (power 3, the last son).
/// let sons: Vec<u32> = canonical_sons(16, NodeId::new(1))
///     .into_iter().map(NodeId::get).collect();
/// assert_eq!(sons, vec![2, 3, 5, 9]);
/// ```
#[must_use]
pub fn canonical_sons(n: usize, id: NodeId) -> Vec<NodeId> {
    let power = canonical_power(n, id);
    let z = id.zero_based();
    (0..power).map(|k| NodeId::from_zero_based(z + (1 << k))).collect()
}

/// Recursive reference construction of the canonical father function, used
/// to validate the closed forms. Exposed for tests and documentation; prefer
/// [`canonical_father`] in real code.
///
/// Builds the father array (index 0 unused) for an `n`-open-cube exactly as
/// the paper's Figure 1 describes: two half-size cubes, the upper half's
/// root pointing at the lower half's root.
#[must_use]
pub fn recursive_father_table(n: usize) -> Vec<Option<NodeId>> {
    let _ = dimension(n);
    // fathers[z] = father of node with 0-based index z.
    fn build(base: u32, size: usize, fathers: &mut [Option<NodeId>]) {
        if size == 1 {
            return;
        }
        let half = size / 2;
        build(base, half, fathers);
        build(base + half as u32, half, fathers);
        // Root of the upper half points at the root of the lower half.
        fathers[(base as usize) + half] = Some(NodeId::from_zero_based(base));
    }
    let mut fathers = vec![None; n];
    build(0, n, &mut fathers);
    let mut table = vec![None; n + 1];
    table[1..=n].copy_from_slice(&fathers[..n]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_recursion_up_to_1024() {
        for p in 0..=10 {
            let n = 1usize << p;
            let table = recursive_father_table(n);
            for id in NodeId::all(n) {
                assert_eq!(
                    canonical_father(n, id),
                    table[id.get() as usize],
                    "father mismatch at n={n}, id={id}"
                );
            }
        }
    }

    #[test]
    fn figure_2a_two_cube() {
        assert_eq!(canonical_father(2, NodeId::new(1)), None);
        assert_eq!(canonical_father(2, NodeId::new(2)), Some(NodeId::new(1)));
    }

    #[test]
    fn figure_2b_four_cube() {
        let fathers: Vec<Option<u32>> =
            NodeId::all(4).map(|id| canonical_father(4, id).map(NodeId::get)).collect();
        assert_eq!(fathers, vec![None, Some(1), Some(1), Some(3)]);
    }

    #[test]
    fn figure_2c_eight_cube() {
        let fathers: Vec<Option<u32>> =
            NodeId::all(8).map(|id| canonical_father(8, id).map(NodeId::get)).collect();
        assert_eq!(
            fathers,
            vec![None, Some(1), Some(1), Some(3), Some(1), Some(5), Some(5), Some(7)]
        );
    }

    #[test]
    fn figure_2d_sixteen_cube() {
        let fathers: Vec<Option<u32>> =
            NodeId::all(16).map(|id| canonical_father(16, id).map(NodeId::get)).collect();
        assert_eq!(
            fathers,
            vec![
                None,
                Some(1),
                Some(1),
                Some(3),
                Some(1),
                Some(5),
                Some(5),
                Some(7),
                Some(1),
                Some(9),
                Some(9),
                Some(11),
                Some(9),
                Some(13),
                Some(13),
                Some(15),
            ]
        );
    }

    #[test]
    fn powers_count_sons() {
        for p in 0..=8 {
            let n = 1usize << p;
            for id in NodeId::all(n) {
                let sons = canonical_sons(n, id);
                assert_eq!(sons.len() as u32, canonical_power(n, id));
                // Sons have powers 0..power, in order.
                for (k, son) in sons.iter().enumerate() {
                    assert_eq!(canonical_power(n, *son), k as u32);
                    assert_eq!(canonical_father(n, *son), Some(id));
                }
            }
        }
    }

    #[test]
    fn root_power_is_dimension() {
        for p in 0..=10 {
            let n = 1usize << p;
            assert_eq!(canonical_power(n, NodeId::new(1)), p as u32);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = canonical_father(6, NodeId::new(1));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_node() {
        let _ = canonical_father(8, NodeId::new(9));
    }
}

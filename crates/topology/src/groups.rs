//! p-groups (Section 2): the aligned blocks of `2^p` identities that
//! partition the cube at every scale.
//!
//! A p-group is the node set of an open-cube subtree with `2^p` nodes.
//! Because b-transformations never change group membership (Cor. 2.2),
//! groups are pure functions of the identities: the p-group of node `i` is
//! its aligned block of `2^p` consecutive identities.

use crate::{dimension, NodeId, OpenCube};

/// The members of the p-group containing `id`, in increasing identity order.
///
/// # Panics
///
/// Panics if `n` is not a power of two, `id > n`, or `p > log2 n`.
///
/// ```
/// use oc_topology::{p_group, NodeId};
/// // Paper: in the 16-open-cube, {5,6,7,8} is a 2-group.
/// let g: Vec<u32> = p_group(16, NodeId::new(6), 2).into_iter()
///     .map(NodeId::get).collect();
/// assert_eq!(g, vec![5, 6, 7, 8]);
/// ```
#[must_use]
pub fn p_group(n: usize, id: NodeId, p: u32) -> Vec<NodeId> {
    let pmax = dimension(n);
    assert!((id.get() as usize) <= n, "node {id} outside 1..={n}");
    assert!(p <= pmax, "group level {p} exceeds pmax {pmax}");
    let size = 1u32 << p;
    let base = id.zero_based() & !(size - 1);
    (0..size).map(|k| NodeId::from_zero_based(base + k)).collect()
}

/// Alias of [`p_group`] reading as "the group of `id` at level `p`".
#[must_use]
pub fn group_of(n: usize, id: NodeId, p: u32) -> Vec<NodeId> {
    p_group(n, id, p)
}

/// The root of the p-group containing `id` in the given tree: the unique
/// member whose power is ≥ `p`.
///
/// Every p-group is an open-cube subtree at all times, so it has exactly one
/// such member. Returns that member.
///
/// # Panics
///
/// Panics on out-of-range arguments, or if the tree is not currently a valid
/// open-cube (no unique root exists in the group).
#[must_use]
pub fn group_root(cube: &OpenCube, id: NodeId, p: u32) -> NodeId {
    let members = p_group(cube.len(), id, p);
    let mut roots = members.iter().copied().filter(|m| cube.power(*m) >= p);
    let root = roots.next().expect("a p-group has a root");
    assert!(roots.next().is_none(), "a p-group has exactly one root");
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_groups_of_16_cube() {
        // Paper: {1,2}, {3,4}, ..., {15,16} are 1-groups; {1,2,3,4} etc.
        // 2-groups; {1..8}, {9..16} 3-groups; {1..16} the 4-group.
        let g1: Vec<u32> = p_group(16, NodeId::new(15), 1).into_iter().map(NodeId::get).collect();
        assert_eq!(g1, vec![15, 16]);
        let g2: Vec<u32> = p_group(16, NodeId::new(10), 2).into_iter().map(NodeId::get).collect();
        assert_eq!(g2, vec![9, 10, 11, 12]);
        let g3: Vec<u32> = p_group(16, NodeId::new(2), 3).into_iter().map(NodeId::get).collect();
        assert_eq!(g3, (1..=8).collect::<Vec<u32>>());
        let g4 = p_group(16, NodeId::new(7), 4);
        assert_eq!(g4.len(), 16);
    }

    #[test]
    fn zero_group_is_singleton() {
        for id in NodeId::all(8) {
            assert_eq!(p_group(8, id, 0), vec![id]);
        }
    }

    #[test]
    fn groups_nest() {
        let n = 64;
        for id in NodeId::all(n) {
            for p in 0..6 {
                let small = p_group(n, id, p);
                let big = p_group(n, id, p + 1);
                assert!(small.iter().all(|m| big.contains(m)));
            }
        }
    }

    #[test]
    fn group_membership_matches_distance() {
        // dist(i, j) <= p  <=>  j in p_group(i, p).
        let n = 32;
        for i in NodeId::all(n) {
            for p in 0..=5 {
                let group = p_group(n, i, p);
                for j in NodeId::all(n) {
                    assert_eq!(group.contains(&j), crate::dist(i, j) <= p);
                }
            }
        }
    }

    #[test]
    fn group_root_of_canonical_cube() {
        let cube = OpenCube::canonical(16);
        assert_eq!(group_root(&cube, NodeId::new(6), 2), NodeId::new(5));
        assert_eq!(group_root(&cube, NodeId::new(16), 3), NodeId::new(9));
        assert_eq!(group_root(&cube, NodeId::new(16), 4), NodeId::new(1));
    }

    #[test]
    fn group_root_tracks_b_transformations() {
        // Swap (7,5) in the 16-cube: 7 becomes the root of the 2-group
        // {5,6,7,8}; the group membership itself is unchanged (Cor. 2.2).
        let mut cube = OpenCube::canonical(16);
        cube.b_transform(NodeId::new(7), NodeId::new(5)).unwrap();
        assert_eq!(group_root(&cube, NodeId::new(6), 2), NodeId::new(7));
        let g: Vec<u32> = p_group(16, NodeId::new(7), 2).into_iter().map(NodeId::get).collect();
        assert_eq!(g, vec![5, 6, 7, 8]);
    }
}

//! Correspondence with the hypercube (Figure 3): an `n`-open-cube is an
//! `n`-hypercube with some links removed, which is why the paper names the
//! structure as it does and why it maps naturally onto hypercube machines
//! like the iPSC/2 the authors tested on.

use crate::{dist, NodeId, OpenCube};

/// `true` if `(a, b)` is an edge of the `log2 n`-dimensional hypercube on
/// identities `1..=n`: their 0-based indices differ in exactly one bit.
///
/// ```
/// use oc_topology::{hypercube::is_hypercube_edge, NodeId};
/// assert!(is_hypercube_edge(NodeId::new(1), NodeId::new(2)));  // 000-001
/// assert!(is_hypercube_edge(NodeId::new(3), NodeId::new(7)));  // 010-110
/// assert!(!is_hypercube_edge(NodeId::new(1), NodeId::new(4))); // 000-011
/// ```
#[must_use]
pub fn is_hypercube_edge(a: NodeId, b: NodeId) -> bool {
    (a.zero_based() ^ b.zero_based()).count_ones() == 1
}

/// All hypercube edges of the `n`-node system, as `(smaller, larger)` pairs.
#[must_use]
pub fn hypercube_edges(n: usize) -> Vec<(NodeId, NodeId)> {
    let p = crate::dimension(n);
    let mut edges = Vec::with_capacity(n / 2 * p as usize);
    for a in NodeId::all(n) {
        for bit in 0..p {
            let zb = a.zero_based() ^ (1 << bit);
            if zb > a.zero_based() {
                edges.push((a, NodeId::from_zero_based(zb)));
            }
        }
    }
    edges
}

/// `true` if every edge of the tree is also a hypercube edge — the defining
/// embedding of Figure 3.
///
/// This holds for the **canonical** cube. After b-transformations the tree
/// stays an open-cube (same shape class) but its edges may join nodes at
/// distance `d` whose indices differ in more than one bit, so the embedding
/// property is specific to the canonical labelling.
#[must_use]
pub fn embeds_in_hypercube(cube: &OpenCube) -> bool {
    cube.iter_nodes().all(|i| match cube.father(i) {
        Some(f) => is_hypercube_edge(i, f),
        None => true,
    })
}

/// Dilation of an edge set over the hypercube: the maximum number of
/// hypercube hops an edge must traverse. For any open-cube edge `(i, f)`,
/// `power(i) + 1 = dist(i, f)` bounds the identity distance; on a hypercube
/// host the message travels at most `dist` dimensions.
#[must_use]
pub fn max_edge_identity_distance(cube: &OpenCube) -> u32 {
    cube.iter_nodes().filter_map(|i| cube.father(i).map(|f| dist(i, f))).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_3_embedding() {
        // The canonical 8-open-cube's 7 edges are all hypercube edges
        // (Figure 3 left vs right).
        let cube = OpenCube::canonical(8);
        assert!(embeds_in_hypercube(&cube));
        assert_eq!(hypercube_edges(8).len(), 12); // 8 * 3 / 2
    }

    #[test]
    fn canonical_embedding_all_sizes() {
        for p in 0..=9 {
            assert!(embeds_in_hypercube(&OpenCube::canonical(1 << p)));
        }
    }

    #[test]
    fn open_cube_has_n_minus_1_of_the_edges() {
        // An open-cube keeps exactly n-1 of the hypercube's n·p/2 links.
        let n = 16;
        let cube = OpenCube::canonical(n);
        let tree_edges = cube.iter_nodes().filter(|i| cube.father(*i).is_some()).count();
        assert_eq!(tree_edges, n - 1);
    }

    #[test]
    fn transformed_tree_keeps_distance_bound() {
        use crate::transform::apply_request_transformation;
        let mut cube = OpenCube::canonical(32);
        for i in 1..=32u32 {
            apply_request_transformation(&mut cube, NodeId::new(i)).unwrap();
            assert!(max_edge_identity_distance(&cube) <= cube.pmax());
        }
    }
}

//! Distances between nodes (Definition 2.2) and distance rings.
//!
//! `dist(i, j)` is the smallest `d` such that `i` and `j` belong to the same
//! d-group. Because b-transformations never change p-group membership
//! (Cor. 2.2), distances are **invariant** over the whole life of the system
//! — the paper stores them in a per-node constant array `dist_i`. We compute
//! them on the fly: with `zi = i - 1`, `zj = j - 1`,
//! `dist(i, j) = bit_length(zi XOR zj)`, because the smallest enclosing
//! d-group of a node is exactly its aligned block of `2^d` indices.

use crate::NodeId;

/// Distance between two nodes (Definition 2.2): the smallest `d` such that
/// both belong to the same d-group. `dist(i, i) = 0`.
///
/// This value is invariant under b-transformations (Cor. 2.3), so it never
/// depends on the current tree — only on the identities.
///
/// ```
/// use oc_topology::{dist, NodeId};
/// // Paper, after Definition 2.2 (16-open-cube):
/// // dist(1,2)=1, dist(1,3)=dist(1,4)=2, dist(1,5..8)=3, dist(1,9..16)=4.
/// let n1 = NodeId::new(1);
/// assert_eq!(dist(n1, NodeId::new(2)), 1);
/// assert_eq!(dist(n1, NodeId::new(3)), 2);
/// assert_eq!(dist(n1, NodeId::new(4)), 2);
/// assert_eq!(dist(n1, NodeId::new(7)), 3);
/// assert_eq!(dist(n1, NodeId::new(16)), 4);
/// assert_eq!(dist(n1, n1), 0);
/// ```
#[must_use]
pub fn dist(i: NodeId, j: NodeId) -> u32 {
    let x = i.zero_based() ^ j.zero_based();
    32 - x.leading_zeros()
}

/// All nodes at distance exactly `d` from `from` in an `n`-node system,
/// in increasing identity order.
///
/// There are exactly `2^(d-1)` such nodes for `1 ≤ d ≤ log2 n`
/// (paper, Section 5): the other half of `from`'s d-group. This is the
/// *ring* probed by phase `d` of the `search_father` procedure.
///
/// # Panics
///
/// Panics if `n` is not a power of two, `from > n`, or `d` exceeds `log2 n`.
///
/// ```
/// use oc_topology::{nodes_at_distance, NodeId};
/// let ring: Vec<u32> = nodes_at_distance(16, NodeId::new(10), 2)
///     .into_iter().map(NodeId::get).collect();
/// assert_eq!(ring, vec![11, 12]);
/// ```
#[must_use]
pub fn nodes_at_distance(n: usize, from: NodeId, d: u32) -> Vec<NodeId> {
    let p = crate::dimension(n);
    assert!((from.get() as usize) <= n, "node {from} outside 1..={n}");
    assert!(d >= 1 && d <= p, "distance {d} outside 1..={p}");
    let z = from.zero_based();
    // Nodes at distance d: indices whose bits above position d-1 agree with
    // z, bit d-1 differs, and bits below d-1 are free.
    let base = (z & !((1u32 << d) - 1)) | ((z ^ (1 << (d - 1))) & (1 << (d - 1)));
    (0..(1u32 << (d - 1))).map(|low| NodeId::from_zero_based(base | low)).collect()
}

/// Size of the distance-`d` ring: `2^(d-1)` nodes for `d ≥ 1`
/// (independent of the node, paper Section 5).
///
/// ```
/// assert_eq!(oc_topology::ring_size(1), 1);
/// assert_eq!(oc_topology::ring_size(4), 8);
/// ```
#[must_use]
pub fn ring_size(d: u32) -> usize {
    assert!(d >= 1, "rings are defined for d >= 1");
    1usize << (d - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation straight from Definition 2.2: the smallest
    /// `d` whose aligned `2^d` block contains both indices.
    fn dist_reference(i: NodeId, j: NodeId, n: usize) -> u32 {
        let p = crate::dimension(n);
        for d in 0..=p {
            let block = 1u32 << d;
            if i.zero_based() / block == j.zero_based() / block {
                return d;
            }
        }
        unreachable!("the whole cube is a {p}-group");
    }

    #[test]
    fn closed_form_matches_definition() {
        let n = 64;
        for i in NodeId::all(n) {
            for j in NodeId::all(n) {
                assert_eq!(dist(i, j), dist_reference(i, j, n), "dist({i},{j})");
            }
        }
    }

    #[test]
    fn dist_is_a_symmetric_ultrametric() {
        let n = 32;
        for i in NodeId::all(n) {
            assert_eq!(dist(i, i), 0);
            for j in NodeId::all(n) {
                assert_eq!(dist(i, j), dist(j, i));
                for k in NodeId::all(n) {
                    // Strong triangle inequality: p-groups nest.
                    assert!(dist(i, k) <= dist(i, j).max(dist(j, k)));
                }
            }
        }
    }

    #[test]
    fn ring_sizes_match_paper() {
        let n = 64;
        for from in NodeId::all(n) {
            for d in 1..=6 {
                let ring = nodes_at_distance(n, from, d);
                assert_eq!(ring.len(), ring_size(d), "ring({from}, {d})");
                for member in &ring {
                    assert_eq!(dist(from, *member), d);
                }
            }
        }
    }

    #[test]
    fn rings_partition_the_cube() {
        let n = 32;
        let from = NodeId::new(13);
        let mut seen = vec![from];
        for d in 1..=5 {
            seen.extend(nodes_at_distance(n, from, d));
        }
        seen.sort();
        let all: Vec<NodeId> = NodeId::all(n).collect();
        assert_eq!(seen, all);
    }

    #[test]
    fn paper_distances_from_node_1() {
        // Checks the exact enumeration the paper gives after Definition 2.2.
        let n1 = NodeId::new(1);
        for j in 9..=16 {
            assert_eq!(dist(n1, NodeId::new(j)), 4);
        }
        for j in 5..=8 {
            assert_eq!(dist(n1, NodeId::new(j)), 3);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn ring_rejects_excessive_distance() {
        let _ = nodes_at_distance(8, NodeId::new(1), 4);
    }
}

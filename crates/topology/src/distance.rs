//! Distances between nodes (Definition 2.2) and distance rings.
//!
//! `dist(i, j)` is the smallest `d` such that `i` and `j` belong to the same
//! d-group. Because b-transformations never change p-group membership
//! (Cor. 2.2), distances are **invariant** over the whole life of the system
//! — the paper stores them in a per-node constant array `dist_i`. We compute
//! them on the fly: with `zi = i - 1`, `zj = j - 1`,
//! `dist(i, j) = bit_length(zi XOR zj)`, because the smallest enclosing
//! d-group of a node is exactly its aligned block of `2^d` indices.

use crate::NodeId;

/// Distance between two nodes (Definition 2.2): the smallest `d` such that
/// both belong to the same d-group. `dist(i, i) = 0`.
///
/// This value is invariant under b-transformations (Cor. 2.3), so it never
/// depends on the current tree — only on the identities.
///
/// ```
/// use oc_topology::{dist, NodeId};
/// // Paper, after Definition 2.2 (16-open-cube):
/// // dist(1,2)=1, dist(1,3)=dist(1,4)=2, dist(1,5..8)=3, dist(1,9..16)=4.
/// let n1 = NodeId::new(1);
/// assert_eq!(dist(n1, NodeId::new(2)), 1);
/// assert_eq!(dist(n1, NodeId::new(3)), 2);
/// assert_eq!(dist(n1, NodeId::new(4)), 2);
/// assert_eq!(dist(n1, NodeId::new(7)), 3);
/// assert_eq!(dist(n1, NodeId::new(16)), 4);
/// assert_eq!(dist(n1, n1), 0);
/// ```
#[must_use]
pub fn dist(i: NodeId, j: NodeId) -> u32 {
    let x = i.zero_based() ^ j.zero_based();
    32 - x.leading_zeros()
}

/// All nodes at distance exactly `d` from `from` in an `n`-node system,
/// in increasing identity order, as an allocation-free iterator.
///
/// There are exactly `2^(d-1)` such nodes for `1 ≤ d ≤ log2 n`
/// (paper, Section 5): the other half of `from`'s d-group. This is the
/// *ring* probed by phase `d` of the `search_father` procedure. An alias
/// of [`ring_iter`]: the function used to materialize a `Vec`, which put
/// one heap allocation per probe phase on the search hot path; collect
/// explicitly if a materialized ring is wanted.
///
/// # Panics
///
/// Panics if `n` is not a power of two, `from > n`, or `d` exceeds `log2 n`.
///
/// ```
/// use oc_topology::{nodes_at_distance, NodeId};
/// let ring: Vec<u32> = nodes_at_distance(16, NodeId::new(10), 2)
///     .map(NodeId::get).collect();
/// assert_eq!(ring, vec![11, 12]);
/// ```
#[must_use]
pub fn nodes_at_distance(n: usize, from: NodeId, d: u32) -> RingIter {
    ring_iter(n, from, d)
}

/// Allocation-free iterator over the distance-`d` ring of `from` — the
/// same `2^(d-1)` nodes as [`nodes_at_distance`], in the same increasing
/// identity order, but computed lazily from three integers instead of a
/// materialized `Vec`. This is the hot path of `search_father`: every
/// probe phase walks one ring, and at production sizes the outer rings
/// hold up to `n/2` members.
///
/// # Panics
///
/// Panics if `n` is not a power of two, `from > n`, or `d` is outside
/// `1..=log2 n` — the same contract as [`nodes_at_distance`].
///
/// ```
/// use oc_topology::{ring_iter, NodeId};
/// let ring: Vec<u32> = ring_iter(16, NodeId::new(10), 2).map(NodeId::get).collect();
/// assert_eq!(ring, vec![11, 12]);
/// assert_eq!(ring_iter(16, NodeId::new(10), 4).len(), 8);
/// ```
#[must_use]
pub fn ring_iter(n: usize, from: NodeId, d: u32) -> RingIter {
    let p = crate::dimension(n);
    assert!((from.get() as usize) <= n, "node {from} outside 1..={n}");
    assert!(d >= 1 && d <= p, "distance {d} outside 1..={p}");
    RingIter { base: ring_base(from, d), next: 0, end: 1u32 << (d - 1) }
}

/// The common zero-based prefix of every member of `from`'s distance-`d`
/// ring: bits above position `d-1` agree with `from`, bit `d-1` differs,
/// and bits below `d-1` are free (those free bits index the ring).
pub(crate) fn ring_base(from: NodeId, d: u32) -> u32 {
    let z = from.zero_based();
    (z & !((1u32 << d) - 1)) | ((z ^ (1 << (d - 1))) & (1 << (d - 1)))
}

/// Iterator of [`ring_iter`]: yields `base | low` for `low` in
/// `0..2^(d-1)`, as [`NodeId`]s in increasing identity order.
#[derive(Debug, Clone)]
pub struct RingIter {
    base: u32,
    next: u32,
    end: u32,
}

impl Iterator for RingIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next == self.end {
            return None;
        }
        let low = self.next;
        self.next += 1;
        Some(NodeId::from_zero_based(self.base | low))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.end - self.next) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for RingIter {}

impl DoubleEndedIterator for RingIter {
    fn next_back(&mut self) -> Option<NodeId> {
        if self.next == self.end {
            return None;
        }
        self.end -= 1;
        Some(NodeId::from_zero_based(self.base | self.end))
    }
}

impl core::iter::FusedIterator for RingIter {}

/// Size of the distance-`d` ring: `2^(d-1)` nodes for `d ≥ 1`
/// (independent of the node, paper Section 5).
///
/// ```
/// assert_eq!(oc_topology::ring_size(1), 1);
/// assert_eq!(oc_topology::ring_size(4), 8);
/// ```
#[must_use]
pub fn ring_size(d: u32) -> usize {
    assert!(d >= 1, "rings are defined for d >= 1");
    1usize << (d - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation straight from Definition 2.2: the smallest
    /// `d` whose aligned `2^d` block contains both indices.
    fn dist_reference(i: NodeId, j: NodeId, n: usize) -> u32 {
        let p = crate::dimension(n);
        for d in 0..=p {
            let block = 1u32 << d;
            if i.zero_based() / block == j.zero_based() / block {
                return d;
            }
        }
        unreachable!("the whole cube is a {p}-group");
    }

    #[test]
    fn closed_form_matches_definition() {
        let n = 64;
        for i in NodeId::all(n) {
            for j in NodeId::all(n) {
                assert_eq!(dist(i, j), dist_reference(i, j, n), "dist({i},{j})");
            }
        }
    }

    #[test]
    fn dist_is_a_symmetric_ultrametric() {
        let n = 32;
        for i in NodeId::all(n) {
            assert_eq!(dist(i, i), 0);
            for j in NodeId::all(n) {
                assert_eq!(dist(i, j), dist(j, i));
                for k in NodeId::all(n) {
                    // Strong triangle inequality: p-groups nest.
                    assert!(dist(i, k) <= dist(i, j).max(dist(j, k)));
                }
            }
        }
    }

    #[test]
    fn ring_sizes_match_paper() {
        let n = 64;
        for from in NodeId::all(n) {
            for d in 1..=6 {
                let ring = nodes_at_distance(n, from, d);
                assert_eq!(ring.len(), ring_size(d), "ring({from}, {d})");
                for member in ring {
                    assert_eq!(dist(from, member), d);
                }
            }
        }
    }

    #[test]
    fn rings_partition_the_cube() {
        let n = 32;
        let from = NodeId::new(13);
        let mut seen = vec![from];
        for d in 1..=5 {
            seen.extend(nodes_at_distance(n, from, d));
        }
        seen.sort();
        let all: Vec<NodeId> = NodeId::all(n).collect();
        assert_eq!(seen, all);
    }

    #[test]
    fn paper_distances_from_node_1() {
        // Checks the exact enumeration the paper gives after Definition 2.2.
        let n1 = NodeId::new(1);
        for j in 9..=16 {
            assert_eq!(dist(n1, NodeId::new(j)), 4);
        }
        for j in 5..=8 {
            assert_eq!(dist(n1, NodeId::new(j)), 3);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn ring_rejects_excessive_distance() {
        let _ = nodes_at_distance(8, NodeId::new(1), 4);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn ring_iter_rejects_excessive_distance() {
        let _ = ring_iter(8, NodeId::new(1), 4);
    }

    #[test]
    fn ring_iter_is_exact_sized_and_fused() {
        let mut it = ring_iter(64, NodeId::new(7), 4);
        assert_eq!(it.len(), 8);
        assert_eq!(it.size_hint(), (8, Some(8)));
        let _ = it.next();
        assert_eq!(it.len(), 7);
        for _ in it.by_ref() {}
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
    }

    #[test]
    fn ring_iter_reverses_cleanly() {
        let forward: Vec<NodeId> = ring_iter(64, NodeId::new(21), 5).collect();
        let mut backward: Vec<NodeId> = ring_iter(64, NodeId::new(21), 5).rev().collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn ring_iter_matches_membership_by_distance() {
        // Every member the iterator yields is at distance exactly d, and
        // every node at distance d is yielded (checked by counting).
        let n = 128;
        for from in NodeId::all(n) {
            for d in 1..=7 {
                let members: Vec<NodeId> = ring_iter(n, from, d).collect();
                assert_eq!(members.len(), ring_size(d));
                for m in &members {
                    assert_eq!(dist(from, *m), d);
                }
            }
        }
    }
}

//! Log-linear latency histogram, HDR-style.
//!
//! Latencies span six orders of magnitude (microseconds under no load,
//! seconds behind a crash repair), so linear buckets are hopeless and
//! storing raw samples is an allocation per request. This histogram uses
//! the standard log-linear layout: exact buckets below 64 ns, then 64
//! sub-buckets per power of two — ≤ 1/64 (~1.6 %) relative error at any
//! magnitude, in a fixed 3 776-slot table with O(1) recording.

/// Number of mantissa bits kept per power of two (64 sub-buckets).
const SUB_BITS: u32 = 6;
/// Sub-buckets per power of two.
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count: the exact linear region plus one 64-wide row per
/// remaining power of two of a `u64`.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// A fixed-size log-linear histogram of nanosecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram { counts: vec![0; BUCKETS], count: 0, sum_nanos: 0, max_nanos: 0 }
    }

    /// Records one latency sample.
    pub fn record(&mut self, nanos: u64) {
        self.counts[Self::bucket(nanos)] += 1;
        self.count += 1;
        self.sum_nanos += u128::from(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    fn bucket(nanos: u64) -> usize {
        if nanos < SUB as u64 {
            return nanos as usize;
        }
        // Bit length b ≥ 7 here; keep the top SUB_BITS+1 bits, which land
        // in [SUB, 2·SUB); the row index is the exponent above the linear
        // region.
        let b = 64 - nanos.leading_zeros();
        let exponent = (b - SUB_BITS) as usize;
        let top = (nanos >> (b - SUB_BITS - 1)) as usize; // in [SUB, 2*SUB)
        exponent * SUB + (top - SUB)
    }

    /// The largest value a bucket can hold — what quantiles report.
    fn bucket_ceiling(bucket: usize) -> u64 {
        if bucket < SUB {
            return bucket as u64;
        }
        let exponent = (bucket / SUB) as u32;
        let sub = (bucket % SUB) as u128;
        let hi = ((sub + SUB as u128 + 1) << (exponent - 1)) - 1;
        u64::try_from(hi).unwrap_or(u64::MAX)
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (exact, not bucketed).
    #[must_use]
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos
    }

    /// Mean of all recorded samples (exact, not bucketed).
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (e.g. `0.99`), as the ceiling of the bucket the
    /// rank lands in, clamped to the exact maximum. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_ceiling(bucket).min(self.max_nanos);
            }
        }
        self.max_nanos
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// The headline summary (p50/p99/p999, max, mean).
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50_nanos: self.quantile(0.50),
            p99_nanos: self.quantile(0.99),
            p999_nanos: self.quantile(0.999),
            max_nanos: self.max_nanos,
            mean_nanos: self.mean_nanos(),
        }
    }
}

/// The quantile summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median latency, nanoseconds.
    pub p50_nanos: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_nanos: u64,
    /// 99.9th-percentile latency, nanoseconds.
    pub p999_nanos: u64,
    /// Largest latency (exact).
    pub max_nanos: u64,
    /// Mean latency (exact).
    pub mean_nanos: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_tight() {
        // Bucket index must be non-decreasing in the value, and the
        // ceiling must bound the value within ~1/32 relative error.
        let mut values: Vec<u64> = Vec::new();
        for shift in 0..63 {
            for offset in [0u64, 1, 3] {
                values.push((1u64 << shift) + offset);
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let b = LatencyHistogram::bucket(v);
            assert!(b >= last, "bucket regressed at {v}");
            last = b;
            let hi = LatencyHistogram::bucket_ceiling(b);
            assert!(hi >= v, "ceiling {hi} below value {v}");
            assert!(
                hi as f64 <= v as f64 * (1.0 + 1.0 / 32.0) + 1.0,
                "ceiling {hi} too loose for {v}"
            );
        }
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 0..10_000u64 {
            h.record(i * 137 + 5);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert!(s.p50_nanos <= s.p99_nanos);
        assert!(s.p99_nanos <= s.p999_nanos);
        assert!(s.p999_nanos <= s.max_nanos);
        assert_eq!(s.max_nanos, 9_999 * 137 + 5);
        assert!(s.mean_nanos > 0.0);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        let s = h.summary();
        assert_eq!(s, LatencySummary::default());
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        assert_eq!(h.quantile(0.5), 42);
        assert_eq!(h.quantile(0.999), 42);
        assert_eq!(h.max_nanos(), 42);
    }

    #[test]
    fn merge_conserves_counts_and_max() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..500 {
            a.record(i);
            b.record(1_000_000 + i);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1_000);
        assert_eq!(a.max_nanos(), 1_000_499);
        assert!(a.quantile(0.25) < 1_000_000);
        assert!(a.quantile(0.75) >= 1_000_000);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    // ---- boundary buckets ----

    #[test]
    fn zero_sample_is_exact() {
        // 0 lands in the first linear bucket and reads back as exactly 0
        // at every quantile.
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_nanos(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q = {q}");
        }
        assert_eq!(h.mean_nanos(), 0.0);
    }

    #[test]
    fn one_nanosecond_is_exact_and_distinct_from_zero() {
        let mut h = LatencyHistogram::new();
        h.record(1);
        assert_eq!(LatencyHistogram::bucket(1), 1);
        assert_eq!(h.quantile(0.5), 1);
        // The linear region is exact for every value below SUB.
        for v in 0..SUB as u64 {
            assert_eq!(LatencyHistogram::bucket(v), v as usize, "linear bucket for {v}");
            assert_eq!(LatencyHistogram::bucket_ceiling(v as usize), v);
        }
    }

    #[test]
    fn linear_to_log_transition_is_seamless() {
        // SUB - 1 is the last exact bucket; SUB is the first log row.
        let last_linear = LatencyHistogram::bucket(SUB as u64 - 1);
        let first_log = LatencyHistogram::bucket(SUB as u64);
        assert_eq!(last_linear, SUB - 1);
        assert_eq!(first_log, SUB);
        assert!(LatencyHistogram::bucket_ceiling(first_log) >= SUB as u64);
        // Power-of-two edges never regress the bucket index.
        for shift in 6..63u32 {
            let below = LatencyHistogram::bucket((1u64 << shift) - 1);
            let at = LatencyHistogram::bucket(1u64 << shift);
            assert!(at >= below, "regression at 2^{shift}");
        }
    }

    #[test]
    fn u64_max_lands_in_the_last_reachable_bucket() {
        let bucket = LatencyHistogram::bucket(u64::MAX);
        assert!(bucket < BUCKETS, "bucket {bucket} out of table ({BUCKETS})");
        assert_eq!(LatencyHistogram::bucket_ceiling(bucket), u64::MAX);
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.max_nanos(), u64::MAX);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_at_every_q() {
        let h = LatencyHistogram::new();
        for q in [0.0, 0.25, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 0, "q = {q}");
        }
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_nanos(), 0.0);
    }

    #[test]
    fn single_sample_dominates_every_quantile_even_q_zero() {
        // The rank clamp: q = 0.0 still returns the sample (rank 1), and
        // the bucket ceiling is clamped to the exact max.
        let mut h = LatencyHistogram::new();
        h.record(1_000_003);
        for q in [0.0, 0.001, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 1_000_003, "q = {q}");
        }
    }

    #[test]
    fn merging_an_empty_histogram_is_the_identity() {
        let mut a = LatencyHistogram::new();
        for i in [0u64, 1, 63, 64, 65, u64::MAX] {
            a.record(i);
        }
        let before = (a.count(), a.max_nanos(), a.quantile(0.5));
        a.merge(&LatencyHistogram::new());
        assert_eq!((a.count(), a.max_nanos(), a.quantile(0.5)), before);
        let mut empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), a.count());
        assert_eq!(empty.quantile(0.999), a.quantile(0.999));
    }
}

//! Runtime-side fault injection, mirroring the simulator's
//! [`oc_sim::LinkFaults`] in wall-clock time.
//!
//! The semantics are kept deliberately identical to the simulator's (see
//! `oc_sim::channel`): loss drops a message on the wire to a *live* node
//! inside the window — a dropped token is destroyed exactly as if its
//! carrier had crashed; duplication enqueues a second, independently
//! delayed delivery of the same logical send, with token-carrying
//! messages exempt (a transport for a token algorithm must be
//! exactly-once for the token). The only difference is the clock: the
//! window is expressed as elapsed wall time since the runtime started,
//! not virtual ticks.

use std::time::Duration;

/// Link-level fault injection for the threaded runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeFaults {
    /// Start of the faulty window, measured from runtime start
    /// (inclusive).
    pub window_from: Duration,
    /// End of the faulty window (exclusive).
    pub window_until: Duration,
    /// Per-message loss probability inside the window, in 1/1000 units.
    pub loss_per_mille: u16,
    /// Per-message duplication probability inside the window, in 1/1000
    /// units (token-carrying messages exempt).
    pub duplicate_per_mille: u16,
}

impl RuntimeFaults {
    /// No faults — the paper's reliable-channel model.
    #[must_use]
    pub fn none() -> Self {
        RuntimeFaults::default()
    }

    /// `true` if this configuration can ever inject a fault.
    #[must_use]
    pub fn enabled(&self) -> bool {
        (self.loss_per_mille > 0 || self.duplicate_per_mille > 0)
            && self.window_from < self.window_until
    }

    /// `true` while `elapsed` (since runtime start) is inside the window.
    #[must_use]
    pub fn active_at(&self, elapsed: Duration) -> bool {
        self.enabled() && elapsed >= self.window_from && elapsed < self.window_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let f = RuntimeFaults::none();
        assert!(!f.enabled());
        assert!(!f.active_at(Duration::ZERO));
    }

    #[test]
    fn window_is_half_open() {
        let f = RuntimeFaults {
            window_from: Duration::from_millis(10),
            window_until: Duration::from_millis(20),
            loss_per_mille: 100,
            duplicate_per_mille: 0,
        };
        assert!(f.enabled());
        assert!(!f.active_at(Duration::from_millis(9)));
        assert!(f.active_at(Duration::from_millis(10)));
        assert!(f.active_at(Duration::from_micros(19_999)));
        assert!(!f.active_at(Duration::from_millis(20)));
    }

    #[test]
    fn needs_both_rate_and_window() {
        let no_window = RuntimeFaults { loss_per_mille: 500, ..RuntimeFaults::none() };
        assert!(!no_window.enabled());
        let no_rate = RuntimeFaults {
            window_from: Duration::ZERO,
            window_until: Duration::from_secs(1),
            ..RuntimeFaults::none()
        };
        assert!(!no_rate.enabled());
    }
}

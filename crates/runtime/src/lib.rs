//! # oc-runtime — the sharded, oracle-checked lock service
//!
//! Where `oc-sim` runs protocols in deterministic virtual time, this
//! crate runs the *same* [`Protocol`] state machines as a real threaded
//! lock service: `n` nodes multiplexed over a configurable **worker
//! pool** (not thread-per-node, so `n = 1024` costs 8 threads, not
//! 1024), plus router threads that model the network (per-message
//! random delays bounded by δ), the timer service, and CS leases.
//! Nothing about the protocol changes — that is the point of the sans-io
//! design: both substrates execute actions through the same
//! [`oc_sim::drive`] engine loop.
//!
//! On top of the substrate sit the pieces a lock *service* needs:
//!
//! * a client session API — [`Runtime::acquire`] / [`Runtime::release`]
//!   with [`RequestId`]s, per-request lifecycle, and an acquire-to-grant
//!   [`LatencyHistogram`]; closed-loop clients use [`Runtime::watcher`]
//!   and [`Runtime::acquire_watched`] to block on completions instead of
//!   sleep-polling statuses;
//! * **multi-tenant namespaces** ([`Runtime::start_multi`]) — many
//!   independent lock instances sharing one worker pool and one router
//!   layer, each judged by its own unmodified `oc_sim` oracle;
//! * crash/recovery and message-loss/duplication injection mirroring the
//!   simulator's `SimConfig`/`LinkFaults` ([`RuntimeFaults`],
//!   [`Runtime::schedule_failures`]);
//! * a linearized event log ([`oc_sim::Trace`], stamped in ticks under
//!   the monitor lock) and *the unmodified `oc_sim` oracles* judging the
//!   execution: the safety [`oc_sim::Oracle`] is fed live from the
//!   monitor, and shutdown builds an [`oc_sim::Horizon`] per namespace
//!   for the shared liveness oracle ([`oc_sim::check_horizon`]).
//!
//! ## The batched hot path
//!
//! Three mechanisms keep the per-acquisition cost flat under load:
//!
//! * **Mailbox batching** — routers deliver due commands as one
//!   [`Mail::Many`] per worker per pass, and workers drain their mailbox
//!   in `try_recv` bursts (bounded by [`RuntimeConfig::batch`]) after
//!   each blocking `recv`, so a saturated worker pays one channel
//!   round-trip per *batch*, not per command.
//! * **Worker-local statistics** — pure counters (messages, events,
//!   losses) accumulate in a [`LocalStats`] and flush to the shared
//!   atomics once per batch with `Relaxed` ordering; only the
//!   control-plane atomics that [`Runtime::settled`] reasons about
//!   (`inflight`, per-namespace `tokens_in_flight`, idle flags) keep
//!   `SeqCst`.
//! * **Router sharding** ([`RuntimeConfig::routers`]) — the delay heap
//!   can be split across several router threads (workers are assigned
//!   round-robin), removing the single-router bottleneck at high
//!   namespace counts.
//!
//! ## Example
//!
//! ```
//! use oc_algo::{Config, OpenCubeNode};
//! use oc_runtime::{Runtime, RuntimeConfig};
//! use oc_sim::SimDuration;
//! use oc_topology::NodeId;
//! use std::time::Duration;
//!
//! let config = Config::new(
//!     8,
//!     SimDuration::from_ticks(40), // δ = 40 ticks = 2ms at a 50µs tick
//!     SimDuration::from_ticks(20),
//! );
//! let rt = Runtime::start(RuntimeConfig::default(), OpenCubeNode::build_all(config));
//! let a = rt.acquire(NodeId::new(5));
//! let b = rt.acquire(NodeId::new(3));
//! assert!(rt.await_cs_entries(2, Duration::from_secs(10)));
//! assert!(rt.await_settled(Duration::from_secs(10)));
//! let report = rt.shutdown();
//! assert_eq!(report.cs_entries, 2);
//! assert_eq!(report.requests_completed, 2);
//! assert!(report.is_clean(), "oracles: {:?}", report);
//! # let _ = (a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;
mod histogram;
mod report;
mod session;

pub use faults::RuntimeFaults;
pub use histogram::{LatencyHistogram, LatencySummary};
pub use report::RuntimeReport;
pub use session::{RequestId, RequestStatus};

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use oc_sim::{
    check_horizon, drive, drive_recovery, isolation_from_components, ActionSink, ArrivalSchedule,
    CompiledScript, FailurePlan, FaultScript, Horizon, LinkFate, LivenessReport, MessageKind,
    NodeAtHorizon, NodeEvent, Oracle, OracleReport, Outbox, Protocol, SimDuration, SimTime,
    TimerRow, Trace, TraceRecord,
};
use oc_topology::NodeId;
use rand::{rngs::StdRng, RngExt, SeedableRng};

use session::{Completion, SessionTable};

/// Configuration of the threaded runtime.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker threads the nodes are sharded over (global node index
    /// `idx` belongs to worker `idx % workers`). `0` means `min(n, 8)`.
    pub workers: usize,
    /// Real-time length of one protocol tick (converts the protocol's
    /// `SimDuration` timer delays into wall-clock time). Choose it so
    /// that the protocol's δ (in ticks) times `tick` exceeds
    /// `max_network_delay`.
    pub tick: Duration,
    /// Upper bound on the per-message delay the router injects.
    pub max_network_delay: Duration,
    /// How long a granted request holds the critical section before the
    /// lease expires (an explicit [`Runtime::release`] ends it earlier;
    /// auto-release requests skip the lease entirely).
    pub cs_duration: Duration,
    /// Seed for the delay- and fault-injection RNGs (per-worker streams
    /// derive from it).
    pub seed: u64,
    /// Link-level fault injection, mirroring `oc_sim::LinkFaults`.
    pub faults: RuntimeFaults,
    /// Record the full linearized event log (costs memory and a lock per
    /// message; CS/crash/recovery events feed the safety oracle even
    /// when this is off). Multi-tenant runs record namespace 0 only.
    pub record_trace: bool,
    /// Largest burst of commands a worker drains from its mailbox before
    /// publishing effects (idle flags, statistics, in-flight claims).
    /// `0` means 128. `1` degenerates to the unbatched one-command loop.
    pub batch: usize,
    /// Router threads the delay heap is sharded over (worker `w` is
    /// served by router `w % routers`). `0` means 1; clamped to the
    /// worker count.
    pub routers: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 0,
            tick: Duration::from_micros(50),
            max_network_delay: Duration::from_millis(1),
            cs_duration: Duration::from_micros(500),
            seed: 0,
            faults: RuntimeFaults::none(),
            record_trace: false,
            batch: 0,
            routers: 0,
        }
    }
}

/// Maps a tick count onto wall time, entirely in `u64` nanoseconds.
///
/// The arithmetic saturates at `u64::MAX` nanos (≈ 584 years) instead of
/// clamping the *tick count* to `u32::MAX` the way the pre-fix code did
/// — a `2^40`-tick schedule entry now lands ≈ 636 days out (at a 50µs
/// tick) rather than collapsing to ≈ 2.4 days alongside every other
/// large timestamp.
fn ticks_to_wall(tick_nanos: u64, ticks: u64) -> Duration {
    Duration::from_nanos(ticks.saturating_mul(tick_nanos))
}

/// Timer events travel through the router as `NodeCmd::Timer(packed)`
/// with the arming's generation packed into the id's high bits; the
/// owning worker unpacks and checks it against the node's [`TimerRow`]
/// on receipt. Protocol timer ids stay below `2^GEN_SHIFT`.
const GEN_SHIFT: u32 = 20;

/// One command addressed to a node, executed by its owning worker.
enum NodeCmd<M> {
    /// A network message arrives (`from` in the namespace's local ids).
    Deliver { from: NodeId, msg: M },
    /// A timer fires (generation-packed).
    Timer(u64),
    /// A client request reaches its node (`RequestCs`).
    Acquire(u64),
    /// A client releases a granted request early.
    Release(u64),
    /// The CS lease of generation `lease` expires.
    ExitLease { lease: u64 },
    /// Fail-stop.
    Crash,
    /// Recovery.
    Recover,
    /// Worker shutdown (sent directly, never through the router).
    Stop,
}

/// A command plus its destination, addressed by *global* node id (the
/// namespace-offset id that picks the worker; the namespace-local id is
/// recovered from the slot on receipt).
struct Targeted<M> {
    to: NodeId,
    cmd: NodeCmd<M>,
}

enum RouterMsg<M> {
    Route { deliver_at: Instant, item: Targeted<M> },
    Stop,
}

/// What worker mailboxes carry: single commands (direct client sends,
/// Stop) or a router's batch of due deliveries — one channel round-trip
/// for the whole burst.
enum Mail<M> {
    One(Targeted<M>),
    Many(Vec<Targeted<M>>),
}

/// Monitor: the linearization point of one namespace. Every CS
/// entry/exit, crash, recovery, and (when tracing) message event of the
/// namespace takes this lock; the lock's acquisition order *is* the
/// linear order in which the unmodified `oc_sim` safety oracle and the
/// trace observe the namespace's run. Namespaces are independent lock
/// instances, so each gets its own monitor — and its own lock, keeping
/// tenants from contending on the linearization point.
struct Monitor {
    oracle: Oracle,
    trace: Trace,
}

/// Cross-thread statistics counters.
///
/// All loads and stores are `Relaxed`: these are pure monotone
/// statistics — workers flush their [`LocalStats`] into them once per
/// batch, and readers either poll a single counter (monotone, no
/// cross-counter invariant) or read after the worker threads are joined
/// (the join is the happens-before edge). Nothing here participates in
/// the [`Runtime::settled`] protocol; the control-plane atomics that do
/// (`Shared::inflight`, `Shared::tokens_in_flight`, `Shared::idle`)
/// live outside and keep `SeqCst`.
#[derive(Default)]
struct Counters {
    messages_sent: AtomicU64,
    events_processed: AtomicU64,
    crashes: AtomicU64,
    recoveries: AtomicU64,
    lost_to_crashes: AtomicU64,
    lost_to_faults: AtomicU64,
    lost_to_partition: AtomicU64,
    duplicated_deliveries: AtomicU64,
}

/// One worker's batch-local statistics, flushed to [`Counters`] once per
/// mailbox batch instead of one `SeqCst` RMW per event.
#[derive(Default)]
struct LocalStats {
    messages_sent: u64,
    events_processed: u64,
    lost_to_crashes: u64,
    lost_to_faults: u64,
    lost_to_partition: u64,
    duplicated_deliveries: u64,
}

impl LocalStats {
    fn flush(&mut self, counters: &Counters) {
        fn add(counter: &AtomicU64, local: &mut u64) {
            if *local != 0 {
                counter.fetch_add(*local, Ordering::Relaxed);
                *local = 0;
            }
        }
        add(&counters.messages_sent, &mut self.messages_sent);
        add(&counters.events_processed, &mut self.events_processed);
        add(&counters.lost_to_crashes, &mut self.lost_to_crashes);
        add(&counters.lost_to_faults, &mut self.lost_to_faults);
        add(&counters.lost_to_partition, &mut self.lost_to_partition);
        add(&counters.duplicated_deliveries, &mut self.duplicated_deliveries);
    }
}

/// One namespace's slice of the global node space: nodes
/// `offset + 1 ..= offset + len` (global) are the namespace's
/// `1 ..= len` (local).
#[derive(Debug, Clone, Copy)]
struct NsMeta {
    offset: u32,
    len: u32,
}

struct Shared {
    /// One linearization monitor per namespace (only namespace 0 records
    /// a trace).
    monitors: Vec<Mutex<Monitor>>,
    sessions: SessionTable,
    counters: Counters,
    /// Completed critical sections per namespace. `Relaxed`: monotone
    /// statistics, polled by `await_cs_entries` and summed after join.
    cs_entries: Vec<AtomicU64>,
    /// Commands alive in the system: incremented before anything enters
    /// a router or a worker mailbox, decremented when a worker finishes
    /// processing it (or a router discards it at shutdown). Zero means
    /// nothing is queued and nothing is mid-processing. Workers release
    /// their claims batch-at-a-time, *after* publishing the batch's idle
    /// flags — the count stays elevated while effects are pending, which
    /// is what keeps [`Runtime::settled`] sound.
    inflight: AtomicU64,
    /// Token-carrying messages currently in flight, per namespace — the
    /// runtime's share of each namespace's live-token census.
    tokens_in_flight: Vec<AtomicU64>,
    /// Per-node "has nothing pending" flags, refreshed by the owning
    /// worker after every batch (crashed nodes read as idle — the
    /// liveness oracle only judges live nodes).
    idle: Vec<AtomicBool>,
    /// Namespace geometry, ordered by offset.
    ns: Vec<NsMeta>,
    /// The time-scripted fault program, compiled against the system size.
    /// Phase windows are in protocol ticks, evaluated against
    /// [`Shared::sim_now`] — the same script the simulator consumes, the
    /// tick mapping doing ticks→wall. Empty by default: nothing injected,
    /// no RNG draws. Only single-namespace runtimes may script faults.
    script: CompiledScript,
    trace_enabled: bool,
    epoch: Instant,
    tick_nanos: u64,
}

impl Shared {
    /// Elapsed wall time as protocol ticks — the trace/oracle timestamp.
    fn sim_now(&self) -> SimTime {
        let nanos = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SimTime::from_ticks(nanos / self.tick_nanos)
    }

    fn lock_monitor(&self, ns: usize) -> std::sync::MutexGuard<'_, Monitor> {
        self.monitors[ns].lock().expect("monitor poisoned")
    }

    /// The namespace a global zero-based node index belongs to.
    fn ns_of(&self, global_idx: usize) -> usize {
        self.ns.partition_point(|meta| (meta.offset as usize) <= global_idx).saturating_sub(1)
    }
}

/// Enqueues `item` (addressed by global node id) for delivery at
/// `deliver_at`, through the router shard that serves the destination's
/// worker. Returns `false` (after undoing the in-flight accounting) if
/// the router is gone — only possible during shutdown.
fn route<M>(
    shared: &Shared,
    routers: &[Sender<RouterMsg<M>>],
    workers: usize,
    deliver_at: Instant,
    to: NodeId,
    cmd: NodeCmd<M>,
) -> bool {
    shared.inflight.fetch_add(1, Ordering::SeqCst);
    let w = (to.zero_based() as usize) % workers;
    let router = &routers[w % routers.len()];
    if router.send(RouterMsg::Route { deliver_at, item: Targeted { to, cmd } }).is_err() {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        false
    } else {
        true
    }
}

/// A registered completion stream: every request opened through
/// [`Runtime::acquire_watched`] with this watcher sends exactly one
/// `(id, terminal status)` pair here when it completes or is abandoned.
/// Closed-loop clients block on this instead of sleep-polling
/// [`Runtime::request_status`].
pub struct Watcher {
    id: u32,
    rx: Receiver<Completion>,
}

impl Watcher {
    /// Blocks up to `timeout` for the next completion.
    #[must_use]
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(RequestId, RequestStatus)> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Takes one completion if one is already queued.
    #[must_use]
    pub fn try_recv(&self) -> Option<(RequestId, RequestStatus)> {
        self.rx.try_recv().ok()
    }
}

/// The threaded runtime handle.
pub struct Runtime<P: Protocol> {
    shared: Arc<Shared>,
    router_txs: Vec<Sender<RouterMsg<P::Msg>>>,
    worker_txs: Vec<Sender<Mail<P::Msg>>>,
    worker_handles: Vec<JoinHandle<Vec<WorkerFinal<P>>>>,
    router_handles: Vec<JoinHandle<()>>,
    config: RuntimeConfig,
    n: usize,
}

/// One node's state as a worker returns it at shutdown.
struct WorkerFinal<P> {
    idx: usize,
    node: P,
    crashed: bool,
    recovered_ever: bool,
}

impl<P: Protocol + Send + 'static> Runtime<P> {
    /// Starts the worker pool and the router with a single namespace.
    /// `nodes[k]` must have identity `k + 1`.
    ///
    /// # Panics
    ///
    /// Panics if a node's `id()` disagrees with its position, or if the
    /// config's `tick` is zero.
    #[must_use]
    pub fn start(config: RuntimeConfig, nodes: Vec<P>) -> Self {
        Runtime::start_inner(config, FaultScript::none(), vec![nodes])
    }

    /// Starts the runtime with a time-scripted fault program
    /// ([`oc_sim::FaultScript`]): partitions, one-way degradation, and
    /// loss/duplication phases whose windows are in protocol ticks —
    /// the *same* script the simulator consumes, mapped onto the wall
    /// clock through the configured `tick`.
    ///
    /// # Panics
    ///
    /// Panics like [`Runtime::start`], or if the script references nodes
    /// outside the system.
    #[must_use]
    pub fn start_scripted(config: RuntimeConfig, script: FaultScript, nodes: Vec<P>) -> Self {
        Runtime::start_inner(config, script, vec![nodes])
    }

    /// Starts a **multi-tenant** runtime: `populations[k]` is namespace
    /// `k`, an independent lock instance with its own token, oracle, and
    /// liveness horizon — all namespaces sharing one worker pool and one
    /// router layer. Within namespace `k`, `populations[k][j]` must have
    /// identity `j + 1` (each namespace numbers its nodes from 1, exactly
    /// as a standalone system would).
    ///
    /// Address namespace `k`'s nodes through [`Runtime::acquire_in`] /
    /// [`Runtime::acquire_watched`]. The single-namespace conveniences
    /// ([`Runtime::acquire`], [`Runtime::crash`], the scheduling APIs)
    /// address namespace 0 / global ids — see each method.
    ///
    /// # Panics
    ///
    /// Panics like [`Runtime::start`], or if `populations` is empty or
    /// contains an empty namespace.
    #[must_use]
    pub fn start_multi(config: RuntimeConfig, populations: Vec<Vec<P>>) -> Self {
        Runtime::start_inner(config, FaultScript::none(), populations)
    }

    fn start_inner(
        mut config: RuntimeConfig,
        script: FaultScript,
        populations: Vec<Vec<P>>,
    ) -> Self {
        assert!(config.tick > Duration::ZERO, "tick must be positive");
        assert!(!populations.is_empty(), "at least one namespace is required");
        // A fault script is compiled against one node population; its
        // partitions/cuts are meaningless across independent instances.
        assert!(
            populations.len() == 1 || !script.enabled(),
            "fault scripts require a single namespace"
        );
        let mut ns = Vec::with_capacity(populations.len());
        let mut offset = 0u32;
        for (k, nodes) in populations.iter().enumerate() {
            assert!(!nodes.is_empty(), "namespace {k} is empty");
            for (j, node) in nodes.iter().enumerate() {
                assert_eq!(
                    node.id(),
                    NodeId::new(j as u32 + 1),
                    "node order mismatch in namespace {k}"
                );
            }
            let len = u32::try_from(nodes.len()).expect("namespace too large");
            ns.push(NsMeta { offset, len });
            offset = offset.checked_add(len).expect("total node count overflows u32");
        }
        let n = offset as usize;
        let workers = match config.workers {
            0 => n.clamp(1, 8),
            w => w.min(n.max(1)),
        };
        config.workers = workers;
        if config.batch == 0 {
            config.batch = 128;
        }
        config.routers = match config.routers {
            0 => 1,
            r => r.min(workers),
        };

        let namespaces = populations.len();
        let shared = Arc::new(Shared {
            monitors: (0..namespaces)
                .map(|k| {
                    Mutex::new(Monitor {
                        oracle: Oracle::new(),
                        trace: Trace::new(config.record_trace && k == 0),
                    })
                })
                .collect(),
            sessions: SessionTable::new(n),
            counters: Counters::default(),
            cs_entries: (0..namespaces).map(|_| AtomicU64::new(0)).collect(),
            inflight: AtomicU64::new(0),
            tokens_in_flight: (0..namespaces).map(|_| AtomicU64::new(0)).collect(),
            idle: (0..n).map(|_| AtomicBool::new(true)).collect(),
            ns,
            script: script.compile(n),
            trace_enabled: config.record_trace,
            epoch: Instant::now(),
            tick_nanos: u64::try_from(config.tick.as_nanos()).unwrap_or(u64::MAX).max(1),
        });

        let mut worker_txs = Vec::with_capacity(workers);
        let mut worker_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = unbounded::<Mail<P::Msg>>();
            worker_txs.push(tx);
            worker_rxs.push(rx);
        }

        let mut router_txs = Vec::with_capacity(config.routers);
        let mut router_handles = Vec::with_capacity(config.routers);
        for _ in 0..config.routers {
            let (tx, rx) = unbounded::<RouterMsg<P::Msg>>();
            let mailboxes = worker_txs.clone();
            let router_shared = Arc::clone(&shared);
            router_handles.push(std::thread::spawn(move || {
                router_main::<P::Msg>(rx, mailboxes, router_shared)
            }));
            router_txs.push(tx);
        }

        // Shard the nodes: worker w owns global indices w, w+W, w+2W, …
        // (ascending within each worker, so slot_pos = idx / W).
        let mut sharded: Vec<Vec<Slot<P>>> = (0..workers).map(|_| Vec::new()).collect();
        for (k, nodes) in populations.into_iter().enumerate() {
            let meta = shared.ns[k];
            for (j, node) in nodes.into_iter().enumerate() {
                let idx = meta.offset as usize + j;
                sharded[idx % workers].push(Slot {
                    idx,
                    ns: k,
                    ns_offset: meta.offset,
                    node,
                    crashed: false,
                    recovered_ever: false,
                    timers: TimerRow::new(),
                    next_gen: 0,
                    lease: 0,
                });
            }
        }

        let mut worker_handles = Vec::with_capacity(workers);
        for (slots, rx) in sharded.into_iter().zip(worker_rxs) {
            let shared = Arc::clone(&shared);
            let routers = router_txs.clone();
            worker_handles.push(std::thread::spawn(move || {
                worker_main::<P>(slots, rx, routers, shared, config)
            }));
        }

        Runtime { shared, router_txs, worker_txs, worker_handles, router_handles, config, n }
    }

    /// Total number of nodes across all namespaces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the runtime has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Independent lock namespaces this runtime serves.
    #[must_use]
    pub fn namespaces(&self) -> usize {
        self.shared.ns.len()
    }

    /// Number of nodes in namespace `ns`.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is out of range.
    #[must_use]
    pub fn namespace_len(&self, ns: usize) -> usize {
        self.shared.ns[ns].len as usize
    }

    /// The namespace a request was issued in.
    #[must_use]
    pub fn namespace_of(&self, id: RequestId) -> Option<usize> {
        let node = self.shared.sessions.node_of(id)?;
        Some(self.shared.ns_of(node.zero_based() as usize))
    }

    fn assert_node(&self, node: NodeId) {
        assert!((1..=self.n as u32).contains(&node.get()), "node {node} outside 1..={}", self.n);
    }

    /// Maps a namespace-local node id to the global id that addresses
    /// its worker slot.
    fn global_of(&self, ns: usize, node: NodeId) -> NodeId {
        let meta = self
            .shared
            .ns
            .get(ns)
            .unwrap_or_else(|| panic!("namespace {ns} outside 0..{}", self.shared.ns.len()));
        assert!(
            (1..=meta.len).contains(&node.get()),
            "node {node} outside 1..={} in namespace {ns}",
            meta.len
        );
        NodeId::new(meta.offset + node.get())
    }

    /// Hands one command straight to the destination's worker mailbox —
    /// no router hop for work that is due *now* (client acquires and
    /// releases, immediate crash/recover). Returns `false` (after
    /// undoing the in-flight claim) if the worker is gone.
    fn send_direct(&self, to: NodeId, cmd: NodeCmd<P::Msg>) -> bool {
        self.shared.inflight.fetch_add(1, Ordering::SeqCst);
        let w = (to.zero_based() as usize) % self.config.workers;
        if self.worker_txs[w].send(Mail::One(Targeted { to, cmd })).is_err() {
            self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
            false
        } else {
            true
        }
    }

    /// Issues a lock request at `node` of namespace 0, to be granted
    /// when the protocol admits it to the critical section. Returns
    /// immediately with the request's identity; track it with
    /// [`Runtime::request_status`].
    pub fn acquire(&self, node: NodeId) -> RequestId {
        self.acquire_in(0, node)
    }

    /// Issues a lock request at `node` (namespace-local id) of namespace
    /// `ns`.
    ///
    /// # Panics
    ///
    /// Panics if `ns` or `node` is out of range.
    pub fn acquire_in(&self, ns: usize, node: NodeId) -> RequestId {
        let global = self.global_of(ns, node);
        let id = self.shared.sessions.open(global, Instant::now(), false, None);
        if !self.send_direct(global, NodeCmd::Acquire(id.index())) {
            let _ = self.shared.sessions.abandon(id);
        }
        id
    }

    /// Issues a lock request whose terminal transition is delivered to
    /// `watcher` — the closed-loop client primitive. With `auto_release`
    /// the critical section exits immediately after entry (no wall-clock
    /// lease), so the completion arrives as fast as the protocol can
    /// cycle the lock.
    ///
    /// # Panics
    ///
    /// Panics if `ns` or `node` is out of range.
    pub fn acquire_watched(
        &self,
        ns: usize,
        node: NodeId,
        watcher: &Watcher,
        auto_release: bool,
    ) -> RequestId {
        let global = self.global_of(ns, node);
        let id = self.shared.sessions.open(global, Instant::now(), auto_release, Some(watcher.id));
        if !self.send_direct(global, NodeCmd::Acquire(id.index())) {
            let _ = self.shared.sessions.abandon(id);
        }
        id
    }

    /// Registers a completion stream for [`Runtime::acquire_watched`].
    #[must_use]
    pub fn watcher(&self) -> Watcher {
        let (id, rx) = self.shared.sessions.register_watcher();
        Watcher { id, rx }
    }

    /// Compatibility alias for [`Runtime::acquire`], discarding the id.
    pub fn request_cs(&self, node: NodeId) {
        let _ = self.acquire(node);
    }

    /// Releases a granted request early (before its lease expires).
    /// Ignored unless `id` currently holds its node's critical section.
    pub fn release(&self, id: RequestId) {
        if let Some(node) = self.shared.sessions.node_of(id) {
            let _ = self.send_direct(node, NodeCmd::Release(id.index()));
        }
    }

    /// One request's lifecycle state.
    #[must_use]
    pub fn request_status(&self, id: RequestId) -> Option<RequestStatus> {
        self.shared.sessions.status(id)
    }

    /// Fail-stops `node` (global id) now.
    pub fn crash(&self, node: NodeId) {
        self.assert_node(node);
        let _ = self.send_direct(node, NodeCmd::Crash);
    }

    /// Recovers `node` (global id) now.
    pub fn recover(&self, node: NodeId) {
        self.assert_node(node);
        let _ = self.send_direct(node, NodeCmd::Recover);
    }

    /// Converts a tick timestamp into the wall-clock instant it maps to.
    /// Pure `u64`-nanosecond arithmetic — see [`ticks_to_wall`].
    fn instant_of(&self, at: SimTime) -> Instant {
        self.shared.epoch + ticks_to_wall(self.shared.tick_nanos, at.ticks())
    }

    /// Schedules every arrival of `schedule` (tick timestamps mapped
    /// through the configured `tick`, nodes addressed by global id),
    /// returning the request ids in schedule order — the same generators
    /// (`oc_sim::workload`) drive both the simulator and the runtime.
    pub fn schedule_workload(&self, schedule: &ArrivalSchedule) -> Vec<RequestId> {
        schedule
            .arrivals()
            .iter()
            .map(|(at, node)| {
                self.assert_node(*node);
                let deliver_at = self.instant_of(*at);
                let id = self.shared.sessions.open(*node, deliver_at, false, None);
                if !route(
                    &self.shared,
                    &self.router_txs,
                    self.config.workers,
                    deliver_at,
                    *node,
                    NodeCmd::Acquire(id.index()),
                ) {
                    let _ = self.shared.sessions.abandon(id);
                }
                id
            })
            .collect()
    }

    /// Schedules the crash (and optional recovery) events of `plan`,
    /// tick timestamps mapped through the configured `tick`, nodes
    /// addressed by global id — the same `FailurePlan` the simulator
    /// consumes.
    pub fn schedule_failures(&self, plan: &FailurePlan) {
        for ev in plan.events() {
            let _ = route(
                &self.shared,
                &self.router_txs,
                self.config.workers,
                self.instant_of(ev.at),
                ev.node,
                NodeCmd::Crash,
            );
            if let Some(recover_at) = ev.recover_at {
                let _ = route(
                    &self.shared,
                    &self.router_txs,
                    self.config.workers,
                    self.instant_of(recover_at),
                    ev.node,
                    NodeCmd::Recover,
                );
            }
        }
    }

    /// Critical sections completed so far, summed over all namespaces.
    #[must_use]
    pub fn cs_entries(&self) -> u64 {
        self.shared.cs_entries.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Critical sections completed by namespace `ns` so far.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is out of range.
    #[must_use]
    pub fn cs_entries_in(&self, ns: usize) -> u64 {
        self.shared.cs_entries[ns].load(Ordering::Relaxed)
    }

    /// Snapshot of the acquire-to-grant latency summary.
    #[must_use]
    pub fn latency_summary(&self) -> LatencySummary {
        self.shared.sessions.latency_summary()
    }

    /// Clones the full latency histogram.
    #[must_use]
    pub fn latency_histogram(&self) -> LatencyHistogram {
        self.shared.sessions.histogram()
    }

    /// Blocks until at least `count` critical sections completed or the
    /// timeout elapses; returns whether the count was reached.
    #[must_use]
    pub fn await_cs_entries(&self, count: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.cs_entries() >= count {
                return true;
            }
            if Instant::now() >= deadline {
                return self.cs_entries() >= count;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// `true` if nothing is in flight, every request is terminal, and
    /// every live node is idle — the runtime's quiescence predicate
    /// (the analogue of the simulator's drained event queue).
    #[must_use]
    pub fn settled(&self) -> bool {
        self.shared.inflight.load(Ordering::SeqCst) == 0
            && self.shared.sessions.all_terminal()
            && self.shared.idle.iter().all(|flag| flag.load(Ordering::SeqCst))
            // Re-check: a command processed between the first check and
            // the idle scan would have been visible as in-flight (workers
            // publish idle flags before releasing in-flight claims).
            && self.shared.inflight.load(Ordering::SeqCst) == 0
    }

    /// Polls [`Runtime::settled`] until it holds or `timeout` elapses.
    #[must_use]
    pub fn await_settled(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.settled() {
                return true;
            }
            if Instant::now() >= deadline {
                return self.settled();
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// Stops the service and returns the final report: every worker is
    /// joined, the routers' queues are discarded, and every request ends
    /// in a terminal state (still-pending ones become `Abandoned`,
    /// granted ones `Completed`). Each namespace is judged separately —
    /// its own safety oracle, terminal token census, and liveness
    /// horizon — and the verdicts fold into one report; call
    /// [`Runtime::await_settled`] first if the run is supposed to have
    /// converged.
    #[must_use]
    pub fn shutdown(mut self) -> RuntimeReport {
        let wall = self.shared.epoch.elapsed();
        let horizon_ticks = self.shared.sim_now();
        let drained = self.settled();
        let mut finals = self.stop_threads();
        assert_eq!(finals.len(), self.n, "a worker panicked; its shard's final state is lost");
        finals.sort_by_key(|f| f.idx);

        let shared = &self.shared;
        let _ = shared.sessions.finalize();
        let (completed, abandoned) = shared.sessions.terminal_counts();
        let injected = shared.sessions.opened();
        let offsets: Vec<u32> = shared.ns.iter().map(|meta| meta.offset).collect();
        let buckets = shared.sessions.counts_by_bucket(&offsets);

        let counters = &shared.counters;
        let events = counters.events_processed.load(Ordering::Relaxed);

        // Judge each namespace with its own oracles, then fold. The
        // terminal token census counts live holders plus tokens still in
        // flight (nonzero only on a forced shutdown); the *safety*
        // census counts only holders at the namespace's highest
        // witnessed epoch — a fenced-out stale token awaiting discard is
        // the current token's predecessor, not a duplicate (identical to
        // the total under `Hardening::None`, where every epoch is 0).
        let mut safety = OracleReport::default();
        let mut liveness = LivenessReport::default();
        let mut trace = Trace::new(false);
        let mut census_total = 0usize;
        let mut cs_total = 0u64;
        for (k, meta) in shared.ns.iter().enumerate() {
            let lo = meta.offset as usize;
            let span = &finals[lo..lo + meta.len as usize];
            let live_held = || span.iter().filter(|f| !f.crashed && f.node.holds_token());
            let holders = live_held().count();
            let max_epoch = live_held().map(|f| f.node.token_epoch()).max().unwrap_or(0);
            let holders_at_max = live_held().filter(|f| f.node.token_epoch() == max_epoch).count();
            let in_flight = shared.tokens_in_flight[k].load(Ordering::SeqCst) as usize;
            let census = holders + in_flight;
            census_total += census;
            let served = shared.cs_entries[k].load(Ordering::Relaxed);
            cs_total += served;
            let (ns_injected, _ns_completed, ns_abandoned) = buckets[k];
            // Partition awareness at the shutdown horizon, mirroring the
            // simulator's `World::partition_isolation` (scripts exist
            // only in single-namespace runs; elsewhere this is one
            // healed component). Pending requests were just finalized
            // into `abandoned`, so `unreachable` stays 0.
            let isolated = isolation_at(&shared.script, horizon_ticks, drained, span, census);
            let horizon = Horizon {
                drained,
                events,
                injected: ns_injected,
                served,
                abandoned: ns_abandoned,
                unreachable: 0,
                live_token_census: census,
                nodes: span
                    .iter()
                    .enumerate()
                    .map(|(j, f)| NodeAtHorizon {
                        node: NodeId::new(j as u32 + 1),
                        alive: !f.crashed,
                        idle: f.node.is_idle(),
                        recovered: f.recovered_ever,
                        isolated: isolated[j],
                        quorum_blocked: !f.crashed && f.node.quorum_blocked(),
                    })
                    .collect(),
            };
            liveness.absorb(check_horizon(&horizon));
            let mut monitor = shared.lock_monitor(k);
            let at = shared.sim_now();
            monitor.oracle.token_census(at, holders_at_max + in_flight);
            safety.absorb(monitor.oracle.report().clone());
            if k == 0 {
                trace = std::mem::replace(&mut monitor.trace, Trace::new(false));
            }
        }

        RuntimeReport {
            cs_entries: cs_total,
            messages_sent: counters.messages_sent.load(Ordering::Relaxed),
            events_processed: events,
            requests_injected: injected,
            requests_completed: completed,
            requests_abandoned: abandoned,
            crashes: counters.crashes.load(Ordering::Relaxed),
            recoveries: counters.recoveries.load(Ordering::Relaxed),
            lost_to_crashes: counters.lost_to_crashes.load(Ordering::Relaxed),
            lost_to_faults: counters.lost_to_faults.load(Ordering::Relaxed),
            lost_to_partition: counters.lost_to_partition.load(Ordering::Relaxed),
            duplicated_deliveries: counters.duplicated_deliveries.load(Ordering::Relaxed),
            terminal_token_census: census_total,
            namespaces: shared.ns.len(),
            drained,
            safety,
            liveness,
            latency: shared.sessions.latency_summary(),
            trace,
            wall,
        }
    }
}

impl<P: Protocol> Runtime<P> {
    /// Stops the routers, then the workers, and joins everything —
    /// mailbox FIFO means commands already delivered to a worker are
    /// processed before its Stop. Idempotent: joined handles are taken,
    /// so a second call is a no-op returning nothing.
    fn stop_threads(&mut self) -> Vec<WorkerFinal<P>> {
        for tx in &self.router_txs {
            let _ = tx.send(RouterMsg::Stop);
        }
        for handle in self.router_handles.drain(..) {
            let _ = handle.join();
        }
        if self.worker_handles.is_empty() {
            return Vec::new();
        }
        for tx in &self.worker_txs {
            self.shared.inflight.fetch_add(1, Ordering::SeqCst);
            if tx.send(Mail::One(Targeted { to: NodeId::new(1), cmd: NodeCmd::Stop })).is_err() {
                self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let mut finals: Vec<WorkerFinal<P>> = Vec::with_capacity(self.n);
        for handle in self.worker_handles.drain(..) {
            // A panicked worker yields nothing; shutdown() notices the
            // missing nodes and panics loudly there — panicking here
            // would abort the process when stop runs during unwinding.
            finals.extend(handle.join().unwrap_or_default());
        }
        finals
    }
}

/// Dropping a runtime without [`Runtime::shutdown`] (an early return, a
/// panicking test) must not strand the router and worker threads: the
/// channel topology is a cycle (workers hold router senders, routers
/// hold worker senders), so nobody would ever observe disconnection.
/// Drop performs the same stop sequence and discards the final states.
impl<P: Protocol> Drop for Runtime<P> {
    fn drop(&mut self) {
        let _ = self.stop_threads();
    }
}

// --------------------------------------------------------------------
// Routers
// --------------------------------------------------------------------

/// One router shard: a thread holding the delay heap for network
/// messages, timers, CS leases, and scheduled crash/recovery commands of
/// the workers it serves. Due commands are delivered as one batch per
/// worker per pass ([`Mail::Many`]), so a burst of simultaneous
/// deliveries costs one channel send, not one per message.
fn router_main<M: MessageKind + Send + 'static>(
    rx: Receiver<RouterMsg<M>>,
    mailboxes: Vec<Sender<Mail<M>>>,
    shared: Arc<Shared>,
) {
    struct Pending<M> {
        deliver_at: Instant,
        seq: u64,
        item: Targeted<M>,
    }
    impl<M> PartialEq for Pending<M> {
        fn eq(&self, other: &Self) -> bool {
            self.seq == other.seq
        }
    }
    impl<M> Eq for Pending<M> {}
    impl<M> PartialOrd for Pending<M> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<M> Ord for Pending<M> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
        }
    }

    /// A command that will never be processed leaves the in-flight count
    /// (and, for a token-carrying delivery, its namespace's census).
    fn discard<M: MessageKind>(shared: &Shared, item: &Targeted<M>) {
        if let NodeCmd::Deliver { msg, .. } = &item.cmd {
            if msg.carries_token() {
                let ns = shared.ns_of(item.to.zero_based() as usize);
                shared.tokens_in_flight[ns].fetch_sub(1, Ordering::SeqCst);
            }
        }
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
    }

    let workers = mailboxes.len();
    let mut heap: BinaryHeap<Reverse<Pending<M>>> = BinaryHeap::new();
    let mut seq = 0u64;
    // Reused per-worker delivery buffers and the token-namespace
    // snapshot for failed sends (the vendored channel consumes the
    // payload on failure, so census bookkeeping is recorded first).
    let mut batches: Vec<Vec<Targeted<M>>> = (0..workers).map(|_| Vec::new()).collect();
    let mut token_ns: Vec<usize> = Vec::new();
    let mut open = true;
    'outer: while open || !heap.is_empty() {
        // Deliver everything due, grouped by worker.
        let now = Instant::now();
        let mut any_due = false;
        while let Some(Reverse(top)) = heap.peek() {
            if top.deliver_at > now {
                break;
            }
            let Reverse(p) = heap.pop().expect("peeked");
            let w = (p.item.to.zero_based() as usize) % workers;
            batches[w].push(p.item);
            any_due = true;
        }
        if any_due {
            for (w, batch) in batches.iter_mut().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let count = batch.len() as u64;
                token_ns.clear();
                for item in batch.iter() {
                    if let NodeCmd::Deliver { msg, .. } = &item.cmd {
                        if msg.carries_token() {
                            token_ns.push(shared.ns_of(item.to.zero_based() as usize));
                        }
                    }
                }
                let mail = if count == 1 {
                    Mail::One(batch.pop().expect("len 1"))
                } else {
                    Mail::Many(std::mem::take(batch))
                };
                if mailboxes[w].send(mail).is_err() {
                    // Worker gone (shutdown): the whole batch dies here.
                    for &ns in &token_ns {
                        shared.tokens_in_flight[ns].fetch_sub(1, Ordering::SeqCst);
                    }
                    shared.inflight.fetch_sub(count, Ordering::SeqCst);
                }
            }
        }
        // Wait for the next deadline or new work.
        let wait =
            heap.peek().map(|Reverse(p)| p.deliver_at.saturating_duration_since(Instant::now()));
        let received = match wait {
            Some(d) if !heap.is_empty() => match rx.recv_timeout(d) {
                Ok(msg) => Some(msg),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => {
                    // No more senders: sleep out the remaining deadline so
                    // queued deliveries still happen on time.
                    open = false;
                    std::thread::sleep(d);
                    None
                }
            },
            _ => match rx.recv() {
                Ok(msg) => Some(msg),
                Err(_) => {
                    open = false;
                    None
                }
            },
        };
        match received {
            Some(RouterMsg::Route { deliver_at, item }) => {
                seq += 1;
                heap.push(Reverse(Pending { deliver_at, seq, item }));
            }
            Some(RouterMsg::Stop) => {
                // Discard everything undelivered — the delay heap AND
                // whatever is still queued in the channel behind this
                // Stop — with the same accounting, so the in-flight
                // count and the token census agree on what the forced
                // shutdown destroyed, whichever queue it sat in.
                for Reverse(p) in heap.drain() {
                    discard(&shared, &p.item);
                }
                while let Ok(msg) = rx.try_recv() {
                    if let RouterMsg::Route { item, .. } = msg {
                        discard(&shared, &item);
                    }
                }
                break 'outer;
            }
            None => {}
        }
    }
}

// --------------------------------------------------------------------
// Workers
// --------------------------------------------------------------------

/// One node's substrate state within its worker's shard.
struct Slot<P> {
    /// Global zero-based index (namespace offset + local index).
    idx: usize,
    /// Namespace this node belongs to.
    ns: usize,
    /// The namespace's global offset: local id = global id − offset.
    ns_offset: u32,
    node: P,
    crashed: bool,
    recovered_ever: bool,
    timers: TimerRow,
    next_gen: u64,
    lease: u64,
}

impl<P> Slot<P> {
    /// The node's namespace-local id — what the protocol state machine
    /// and the namespace's oracle speak.
    fn local(&self, global: NodeId) -> NodeId {
        debug_assert_eq!(global.zero_based() as usize, self.idx, "misrouted command");
        NodeId::new(global.get() - self.ns_offset)
    }
}

/// One node's substrate effects: the runtime's [`ActionSink`], handing
/// the engine's actions to a router thread with real-time deadlines.
/// The deliver→step→collect-actions loop itself lives in
/// [`oc_sim::drive`] — the same code path the simulator runs. Node ids
/// crossing this sink are namespace-local (the protocol's view);
/// routing converts to global ids.
struct ThreadSink<'a, M> {
    shared: &'a Shared,
    routers: &'a [Sender<RouterMsg<M>>],
    config: &'a RuntimeConfig,
    rng: &'a mut StdRng,
    timers: &'a mut TimerRow,
    next_gen: &'a mut u64,
    lease: &'a mut u64,
    ns: usize,
    ns_offset: u32,
    stats: &'a mut LocalStats,
}

impl<M> ThreadSink<'_, M> {
    fn global(&self, local: NodeId) -> NodeId {
        NodeId::new(local.get() + self.ns_offset)
    }

    fn sample_delay(&mut self) -> Duration {
        let max = u64::try_from(self.config.max_network_delay.as_nanos()).unwrap_or(u64::MAX);
        Duration::from_nanos(self.rng.random_range(0..=max))
    }
}

impl<M: MessageKind + core::fmt::Debug + Clone + Send + 'static> ActionSink<M>
    for ThreadSink<'_, M>
{
    fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        let shared = self.shared;
        self.stats.messages_sent += 1;
        if shared.trace_enabled && self.ns == 0 {
            let mut monitor = shared.lock_monitor(0);
            let at = shared.sim_now();
            monitor.trace.push(
                at,
                TraceRecord::Send { from, to, kind: msg.kind(), desc: format!("{msg:?}") },
            );
        }
        // A standing partition destroys every crossing message before
        // any probabilistic fault machinery runs (deterministic, no RNG
        // draw) — mirroring the simulator: the legacy duplication window
        // below can never smuggle a copy across the cut.
        let now_ticks = shared.sim_now();
        if shared.script.active_at(now_ticks) && shared.script.cut(now_ticks, from, to) {
            self.stats.lost_to_partition += 1;
            return;
        }
        // Decide-before-act, identical to the simulator's `Core::send`:
        // every fault source votes on the message's fate before any copy
        // is enqueued. Any drop wins outright — a send the scripted
        // program destroys leaves no legacy-window duplicate behind —
        // and overlapping duplication verdicts collapse to ONE extra
        // delivery. Draw order (legacy loss, legacy dup, script) is the
        // same as the old act-as-you-go code, so equal-seed runs that
        // don't combine sources behave identically.
        let mut duplicate = false;
        let faults = &self.config.faults;
        if faults.active_at(shared.epoch.elapsed()) {
            if faults.loss_per_mille > 0
                && self.rng.random_range(0..1000u32) < u32::from(faults.loss_per_mille)
            {
                self.stats.lost_to_faults += 1;
                return;
            }
            if faults.duplicate_per_mille > 0
                && !msg.carries_token()
                && self.rng.random_range(0..1000u32) < u32::from(faults.duplicate_per_mille)
            {
                duplicate = true;
            }
        }
        if shared.script.active_at(now_ticks) {
            match shared.script.probabilistic_fate(
                now_ticks,
                from,
                to,
                msg.carries_token(),
                self.rng,
            ) {
                LinkFate::Deliver => {}
                LinkFate::DropPartition => {
                    unreachable!("probabilistic_fate skips partition phases by construction")
                }
                LinkFate::DropLoss => {
                    self.stats.lost_to_faults += 1;
                    return;
                }
                LinkFate::DeliverAndDuplicate => duplicate = true,
            }
        }
        let to_global = self.global(to);
        if duplicate {
            self.stats.duplicated_deliveries += 1;
            let delay = self.sample_delay();
            let _ = route(
                shared,
                self.routers,
                self.config.workers,
                Instant::now() + delay,
                to_global,
                NodeCmd::Deliver { from, msg: msg.clone() },
            );
        }
        let carries_token = msg.carries_token();
        if carries_token {
            shared.tokens_in_flight[self.ns].fetch_add(1, Ordering::SeqCst);
        }
        let delay = self.sample_delay();
        if !route(
            shared,
            self.routers,
            self.config.workers,
            Instant::now() + delay,
            to_global,
            NodeCmd::Deliver { from, msg },
        ) && carries_token
        {
            // Router gone (shutdown): the message — and its token — die.
            // `route` already undid the in-flight count; undo the census.
            shared.tokens_in_flight[self.ns].fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn enter_cs(&mut self, node: NodeId, token_epoch: u64) {
        let shared = self.shared;
        *self.lease += 1;
        {
            let mut monitor = shared.lock_monitor(self.ns);
            let at = shared.sim_now();
            monitor.oracle.enter_cs(at, node, token_epoch);
            monitor.trace.push(at, TraceRecord::EnterCs(node));
        }
        shared.cs_entries[self.ns].fetch_add(1, Ordering::Relaxed);
        let global = self.global(node);
        let auto = matches!(shared.sessions.grant(global, Instant::now()), Some((_, _, true)));
        // Auto-release requests skip the wall-clock lease: the worker
        // exits the CS immediately after this command (`drain_auto`),
        // so no ExitLease ever crosses the router for them.
        if !auto {
            let _ = route(
                shared,
                self.routers,
                self.config.workers,
                Instant::now() + self.config.cs_duration,
                global,
                NodeCmd::ExitLease { lease: *self.lease },
            );
        }
    }

    fn set_timer(&mut self, node: NodeId, timer_id: u64, delay: SimDuration) {
        assert!(timer_id < (1 << GEN_SHIFT), "timer id too large for packing");
        *self.next_gen += 1;
        self.timers.arm(timer_id, *self.next_gen);
        let packed = timer_id | (*self.next_gen << GEN_SHIFT);
        let real_delay = ticks_to_wall(self.shared.tick_nanos, delay.ticks());
        let _ = route(
            self.shared,
            self.routers,
            self.config.workers,
            Instant::now() + real_delay,
            self.global(node),
            NodeCmd::Timer(packed),
        );
    }

    fn cancel_timer(&mut self, _node: NodeId, timer_id: u64) {
        self.timers.cancel(timer_id);
    }
}

/// One worker's thread: drains its mailbox in batches, runs its shard of
/// nodes through the shared engine driver, executes actions through the
/// routers and monitors. Effects are published batch-at-a-time — idle
/// flags first, then statistics, then the batch's in-flight claims are
/// released in one subtraction — so [`Runtime::settled`] never observes
/// a zero in-flight count with unpublished effects. Returns the shard's
/// final node states for the shutdown horizon.
fn worker_main<P: Protocol + Send + 'static>(
    mut slots: Vec<Slot<P>>,
    rx: Receiver<Mail<P::Msg>>,
    routers: Vec<Sender<RouterMsg<P::Msg>>>,
    shared: Arc<Shared>,
    config: RuntimeConfig,
) -> Vec<WorkerFinal<P>> {
    fn enqueue<M>(queue: &mut VecDeque<Targeted<M>>, mail: Mail<M>) {
        match mail {
            Mail::One(item) => queue.push_back(item),
            Mail::Many(items) => queue.extend(items),
        }
    }

    let workers = config.workers;
    let mut rng = StdRng::seed_from_u64(
        config.seed
            ^ slots.first().map_or(0, |s| (s.idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let mut out: Outbox<P::Msg> = Outbox::new();
    let mut queue: VecDeque<Targeted<P::Msg>> = VecDeque::new();
    let mut touched: Vec<usize> = Vec::new();
    let mut stats = LocalStats::default();
    let mut stopping = false;

    'main: loop {
        match rx.recv() {
            Ok(mail) => enqueue(&mut queue, mail),
            Err(_) => break 'main,
        }
        // Opportunistic burst: top the batch up from whatever is already
        // queued, without blocking.
        while queue.len() < config.batch {
            match rx.try_recv() {
                Ok(mail) => enqueue(&mut queue, mail),
                Err(_) => break,
            }
        }
        let mut processed = 0u64;
        touched.clear();
        while let Some(Targeted { to, cmd }) = queue.pop_front() {
            processed += 1;
            if matches!(cmd, NodeCmd::Stop) {
                stopping = true;
                break;
            }
            stats.events_processed += 1;
            let slot_pos = (to.zero_based() as usize) / workers;
            let slot = &mut slots[slot_pos];
            process(slot, to, cmd, &mut out, &routers, &shared, &config, &mut rng, &mut stats);
            drain_auto(slot, to, &mut out, &routers, &shared, &config, &mut rng, &mut stats);
            touched.push(slot_pos);
        }
        // Publish the batch's effects, *then* release its in-flight
        // claims (idle-before-inflight is what `settled` relies on).
        touched.sort_unstable();
        touched.dedup();
        for &pos in touched.iter() {
            let slot = &slots[pos];
            shared.idle[slot.idx].store(slot.crashed || slot.node.is_idle(), Ordering::SeqCst);
        }
        stats.flush(&shared.counters);
        if stopping {
            // Mailbox FIFO puts Stop last, so nothing should follow it —
            // but account for any leftovers defensively, exactly like a
            // router discard.
            for item in queue.drain(..) {
                processed += 1;
                if let NodeCmd::Deliver { msg, .. } = &item.cmd {
                    if msg.carries_token() {
                        let ns = shared.ns_of(item.to.zero_based() as usize);
                        shared.tokens_in_flight[ns].fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
        }
        shared.inflight.fetch_sub(processed, Ordering::SeqCst);
        if stopping {
            break 'main;
        }
    }
    slots
        .into_iter()
        .map(|slot| WorkerFinal {
            idx: slot.idx,
            node: slot.node,
            crashed: slot.crashed,
            recovered_ever: slot.recovered_ever,
        })
        .collect()
}

/// The single construction point for [`ThreadSink`]'s split borrows:
/// builds the slot's sink and feeds one event through the shared engine
/// driver (`None` runs the recovery hook instead).
#[allow(clippy::too_many_arguments)]
fn drive_slot<P: Protocol + Send + 'static>(
    slot: &mut Slot<P>,
    event: Option<NodeEvent<P::Msg>>,
    out: &mut Outbox<P::Msg>,
    routers: &[Sender<RouterMsg<P::Msg>>],
    shared: &Shared,
    config: &RuntimeConfig,
    rng: &mut StdRng,
    stats: &mut LocalStats,
) {
    let mut sink = ThreadSink {
        shared,
        routers,
        config,
        rng,
        timers: &mut slot.timers,
        next_gen: &mut slot.next_gen,
        lease: &mut slot.lease,
        ns: slot.ns,
        ns_offset: slot.ns_offset,
        stats,
    };
    match event {
        Some(event) => drive(&mut slot.node, event, out, &mut sink),
        None => drive_recovery(&mut slot.node, out, &mut sink),
    }
}

/// Exits the CS for as long as the node sits inside it on behalf of an
/// auto-release request — the closed-loop fast path: grant and exit
/// happen within one worker dispatch, no ExitLease round-trips through
/// the router. Loops because an exit can immediately re-grant the next
/// queued request, which may itself be auto-release.
#[allow(clippy::too_many_arguments)]
fn drain_auto<P: Protocol + Send + 'static>(
    slot: &mut Slot<P>,
    global: NodeId,
    out: &mut Outbox<P::Msg>,
    routers: &[Sender<RouterMsg<P::Msg>>],
    shared: &Shared,
    config: &RuntimeConfig,
    rng: &mut StdRng,
    stats: &mut LocalStats,
) {
    while !slot.crashed && slot.node.in_cs() && shared.sessions.current_is_auto(global) {
        exit_cs(slot, global, out, routers, shared, config, rng, stats);
    }
}

/// Executes one command against its node. `global` is the routing id;
/// the protocol and the namespace's monitor speak the local id.
#[allow(clippy::too_many_arguments)]
fn process<P: Protocol + Send + 'static>(
    slot: &mut Slot<P>,
    global: NodeId,
    cmd: NodeCmd<P::Msg>,
    out: &mut Outbox<P::Msg>,
    routers: &[Sender<RouterMsg<P::Msg>>],
    shared: &Shared,
    config: &RuntimeConfig,
    rng: &mut StdRng,
    stats: &mut LocalStats,
) {
    let local = slot.local(global);
    match cmd {
        NodeCmd::Stop => unreachable!("handled by the worker loop"),
        NodeCmd::Deliver { from, msg } => {
            if msg.carries_token() {
                shared.tokens_in_flight[slot.ns].fetch_sub(1, Ordering::SeqCst);
            }
            if slot.crashed {
                // Fail-stop: everything delivered while down is lost.
                stats.lost_to_crashes += 1;
                return;
            }
            if shared.trace_enabled && slot.ns == 0 {
                let mut monitor = shared.lock_monitor(0);
                let at = shared.sim_now();
                monitor.trace.push(
                    at,
                    TraceRecord::Deliver {
                        from,
                        to: local,
                        kind: msg.kind(),
                        desc: format!("{msg:?}"),
                    },
                );
            }
            drive_slot(
                slot,
                Some(NodeEvent::Deliver { from, msg }),
                out,
                routers,
                shared,
                config,
                rng,
                stats,
            );
        }
        NodeCmd::Timer(packed) => {
            if slot.crashed {
                return;
            }
            let timer_id = packed & ((1 << GEN_SHIFT) - 1);
            let generation = packed >> GEN_SHIFT;
            if !slot.timers.fire(timer_id, generation) {
                return; // cancelled or superseded
            }
            drive_slot(
                slot,
                Some(NodeEvent::Timer(timer_id)),
                out,
                routers,
                shared,
                config,
                rng,
                stats,
            );
        }
        NodeCmd::Acquire(id) => {
            let request = RequestId::from_index(id);
            if slot.crashed {
                // The application on a crashed node cannot request; the
                // injection is abandoned, never served.
                let _ = shared.sessions.abandon(request);
                return;
            }
            shared.sessions.activate(request);
            drive_slot(slot, Some(NodeEvent::RequestCs), out, routers, shared, config, rng, stats);
        }
        NodeCmd::Release(id) => {
            if slot.crashed
                || !shared.sessions.is_current(RequestId::from_index(id), global)
                || !slot.node.in_cs()
            {
                return;
            }
            exit_cs(slot, global, out, routers, shared, config, rng, stats);
        }
        NodeCmd::ExitLease { lease } => {
            // Stale leases (superseded by a later CS entry, or by a
            // crash) are dropped — the runtime's analogue of the
            // simulator purging a dead CS's scheduled exit.
            if slot.crashed || lease != slot.lease || !slot.node.in_cs() {
                return;
            }
            exit_cs(slot, global, out, routers, shared, config, rng, stats);
        }
        NodeCmd::Crash => {
            if slot.crashed {
                return;
            }
            slot.crashed = true;
            shared.counters.crashes.fetch_add(1, Ordering::Relaxed);
            {
                let mut monitor = shared.lock_monitor(slot.ns);
                let at = shared.sim_now();
                monitor.oracle.exit_cs(local);
                monitor.trace.push(at, TraceRecord::Crash(local));
            }
            // All volatile node state is lost — including the
            // application's not-yet-served requests, which are
            // therefore abandoned; a granted request's CS died with the
            // node (its lease is invalidated below).
            let _ = shared.sessions.crash_node(global);
            slot.node.on_crash();
            slot.timers.clear();
            slot.lease += 1;
        }
        NodeCmd::Recover => {
            if !slot.crashed {
                return;
            }
            slot.crashed = false;
            slot.recovered_ever = true;
            shared.counters.recoveries.fetch_add(1, Ordering::Relaxed);
            {
                let mut monitor = shared.lock_monitor(slot.ns);
                let at = shared.sim_now();
                monitor.trace.push(at, TraceRecord::Recover(local));
            }
            drive_slot(slot, None, out, routers, shared, config, rng, stats);
        }
    }
}

/// Partition awareness for one namespace's shutdown horizon — the same
/// policy as the simulator's `World::partition_isolation`, through the
/// shared [`oc_sim::isolation_from_components`]. `span` is the
/// namespace's contiguous slice of the (index-sorted) final states; the
/// result is positional over that slice. `census` is the namespace's
/// terminal live-token census. Fault scripts exist only in
/// single-namespace runs, so other namespaces see one healed component.
fn isolation_at<P: Protocol>(
    script: &CompiledScript,
    at: SimTime,
    drained: bool,
    span: &[WorkerFinal<P>],
    census: usize,
) -> Vec<bool> {
    let n = span.len();
    let alive: Vec<bool> = span.iter().map(|f| !f.crashed).collect();
    let holders: Vec<bool> = span.iter().map(|f| !f.crashed && f.node.holds_token()).collect();
    isolation_from_components(
        script.components_at_horizon(at, n, drained),
        &alive,
        &holders,
        census,
    )
}

/// The shared CS-exit path (lease expiry, early release, auto-release).
#[allow(clippy::too_many_arguments)]
fn exit_cs<P: Protocol + Send + 'static>(
    slot: &mut Slot<P>,
    global: NodeId,
    out: &mut Outbox<P::Msg>,
    routers: &[Sender<RouterMsg<P::Msg>>],
    shared: &Shared,
    config: &RuntimeConfig,
    rng: &mut StdRng,
    stats: &mut LocalStats,
) {
    let local = slot.local(global);
    {
        let mut monitor = shared.lock_monitor(slot.ns);
        let at = shared.sim_now();
        monitor.oracle.exit_cs(local);
        monitor.trace.push(at, TraceRecord::ExitCs(local));
    }
    let _ = shared.sessions.complete_current(global);
    drive_slot(slot, Some(NodeEvent::ExitCs), out, routers, shared, config, rng, stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_algo::{Config, OpenCubeNode};
    use oc_sim::SimDuration;

    fn config(workers: usize) -> RuntimeConfig {
        RuntimeConfig { workers, ..RuntimeConfig::default() }
    }

    fn protocol(n: usize) -> Config {
        // δ = 40 ticks × 50µs = 2ms ≥ 1ms max network delay.
        Config::new(n, SimDuration::from_ticks(40), SimDuration::from_ticks(20))
            .with_contention_slack(SimDuration::from_ticks(20_000))
    }

    fn rt(n: usize, workers: usize) -> Runtime<OpenCubeNode> {
        Runtime::start(config(workers), OpenCubeNode::build_all(protocol(n)))
    }

    #[test]
    fn serves_requests_across_worker_pool() {
        let rt = rt(8, 3);
        assert_eq!(rt.workers(), 3);
        for i in 1..=8u32 {
            rt.request_cs(NodeId::new(i));
        }
        assert!(rt.await_cs_entries(8, Duration::from_secs(30)));
        assert!(rt.await_settled(Duration::from_secs(30)));
        let report = rt.shutdown();
        assert_eq!(report.cs_entries, 8);
        assert_eq!(report.requests_completed, 8);
        assert_eq!(report.requests_abandoned, 0);
        assert!(report.drained);
        assert!(report.is_clean(), "oracles: {report:?}");
        assert!(report.mutual_exclusion_held());
        assert!(report.messages_sent > 0);
        assert_eq!(report.terminal_token_census, 1);
        assert_eq!(report.namespaces, 1);
        assert_eq!(report.latency.count, 8);
        assert!(report.latency.p50_nanos <= report.latency.p99_nanos);
    }

    #[test]
    fn survives_crash_and_recovery_of_the_holder() {
        let rt = rt(8, 4);
        let first = rt.acquire(NodeId::new(5));
        assert!(rt.await_cs_entries(1, Duration::from_secs(30)));
        // Crash the node that now holds the token.
        rt.crash(NodeId::new(5));
        std::thread::sleep(Duration::from_millis(20));
        rt.recover(NodeId::new(5));
        // The system must keep serving.
        rt.request_cs(NodeId::new(2));
        rt.request_cs(NodeId::new(7));
        assert!(rt.await_cs_entries(3, Duration::from_secs(60)));
        assert!(rt.await_settled(Duration::from_secs(60)));
        let report = rt.shutdown();
        assert!(report.is_clean(), "oracles: {report:?}");
        assert_eq!(report.crashes, 1);
        assert_eq!(report.recoveries, 1);
        assert_eq!(rt_status(&report), (3, 0));
        let _ = first;
    }

    fn rt_status(report: &RuntimeReport) -> (u64, u64) {
        (report.requests_completed, report.requests_abandoned)
    }

    #[test]
    fn shutdown_is_clean_when_idle() {
        let rt = rt(2, 1);
        let report = rt.shutdown();
        assert_eq!(report.cs_entries, 0);
        assert!(report.drained);
        assert!(report.is_clean(), "oracles: {report:?}");
    }

    #[test]
    fn abandoned_and_recovered_are_accounted() {
        // The PR-3 accounting parity: a request pending at its node's
        // crash is abandoned (not silently dropped, not counted served),
        // and recoveries are reported.
        let mut cfg = config(2);
        // A long lease keeps node 1 inside the CS while node 6 crashes,
        // so node 6's request is provably still pending at the crash.
        cfg.cs_duration = Duration::from_millis(300);
        let rt = Runtime::start(cfg, OpenCubeNode::build_all(protocol(8)));
        // Occupy the lock from node 1 so node 6's request stays pending.
        let holder = rt.acquire(NodeId::new(1));
        assert!(rt.await_cs_entries(1, Duration::from_secs(30)));
        let doomed = rt.acquire(NodeId::new(6));
        // Give the acquire time to reach node 6, then kill the node.
        std::thread::sleep(Duration::from_millis(10));
        rt.crash(NodeId::new(6));
        std::thread::sleep(Duration::from_millis(10));
        rt.recover(NodeId::new(6));
        assert!(rt.await_settled(Duration::from_secs(60)));
        assert_eq!(rt.request_status(doomed), Some(RequestStatus::Abandoned));
        assert_eq!(rt.request_status(holder), Some(RequestStatus::Completed));
        let report = rt.shutdown();
        assert_eq!(report.requests_injected, 2);
        assert_eq!(report.requests_completed, 1);
        assert_eq!(report.requests_abandoned, 1);
        assert_eq!(report.recoveries, 1);
        assert!(report.is_clean(), "oracles: {report:?}");
    }

    #[test]
    fn early_release_ends_the_lease() {
        let mut cfg = config(2);
        cfg.cs_duration = Duration::from_secs(5); // lease far in the future
        let proto = Config::new(4, SimDuration::from_ticks(40), SimDuration::from_ticks(20))
            .with_contention_slack(SimDuration::from_ticks(200_000));
        let rt = Runtime::start(cfg, OpenCubeNode::build_all(proto));
        let id = rt.acquire(NodeId::new(2));
        assert!(rt.await_cs_entries(1, Duration::from_secs(10)));
        assert_eq!(rt.request_status(id), Some(RequestStatus::Granted));
        rt.release(id);
        let deadline = Instant::now() + Duration::from_secs(5);
        while rt.request_status(id) != Some(RequestStatus::Completed) {
            assert!(Instant::now() < deadline, "release did not complete the request");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Well before the 5s lease: the release did it.
        let report = rt.shutdown();
        assert_eq!(report.requests_completed, 1);
        assert!(report.mutual_exclusion_held());
    }

    #[test]
    fn scheduled_workload_and_failures_run() {
        let mut cfg = config(4);
        cfg.tick = Duration::from_micros(20);
        cfg.max_network_delay = Duration::from_micros(400);
        cfg.cs_duration = Duration::from_micros(200);
        cfg.record_trace = true;
        let proto = Config::new(8, SimDuration::from_ticks(40), SimDuration::from_ticks(10))
            .with_contention_slack(SimDuration::from_ticks(20_000));
        let rt = Runtime::start(cfg, OpenCubeNode::build_all(proto));
        let mut schedule = ArrivalSchedule::new();
        for i in 1..=8u32 {
            schedule = schedule.then(SimTime::from_ticks(u64::from(i) * 100), NodeId::new(i));
        }
        let ids = rt.schedule_workload(&schedule);
        assert_eq!(ids.len(), 8);
        // Crash a bystander late, recover it, all in ticks.
        let plan = FailurePlan::none().crash_and_recover(
            NodeId::new(4),
            SimTime::from_ticks(30_000),
            SimTime::from_ticks(32_000),
        );
        rt.schedule_failures(&plan);
        assert!(rt.await_settled(Duration::from_secs(60)));
        let report = rt.shutdown();
        assert_eq!(report.crashes, 1);
        assert_eq!(report.recoveries, 1);
        assert!(report.is_clean(), "oracles: {report:?}");
        // The trace was recorded and replaying its CS occupancy through
        // the oracle agrees with the live verdict.
        assert!(!report.trace.records().is_empty());
        let replayed = Oracle::replay_cs(&report.trace);
        assert_eq!(replayed.is_clean(), report.mutual_exclusion_held());
    }

    #[test]
    fn scripted_partition_heals_and_the_service_recovers() {
        use oc_sim::{FaultPhase, FaultPhaseKind};
        // Split the 8-cube into halves for a window much shorter than the
        // suspicion slack, with traffic crossing the cut; after the heal
        // the retry machinery must serve everything and the oracles stay
        // clean. At a 50µs tick, [2000, 6000) ticks ≈ [100ms, 300ms).
        let script = FaultScript::none().with_phase(FaultPhase {
            from: SimTime::from_ticks(2_000),
            until: SimTime::from_ticks(6_000),
            kind: FaultPhaseKind::GroupPartition { p: 2 },
        });
        let rt = Runtime::start_scripted(config(4), script, OpenCubeNode::build_all(protocol(8)));
        let mut schedule = ArrivalSchedule::new();
        for i in 1..=8u32 {
            // One request per node, spread across the partition window.
            schedule = schedule.then(SimTime::from_ticks(u64::from(i) * 800), NodeId::new(i));
        }
        let ids = rt.schedule_workload(&schedule);
        assert_eq!(ids.len(), 8);
        assert!(rt.await_settled(Duration::from_secs(60)));
        let report = rt.shutdown();
        assert!(report.is_clean(), "oracles: {report:?}");
        assert_eq!(report.requests_completed + report.requests_abandoned, 8);
        assert_eq!(report.requests_abandoned, 0, "nobody crashed; the heal must serve everyone");
    }

    #[test]
    fn forced_shutdown_leaves_every_request_terminal() {
        let rt = rt(8, 2);
        let ids: Vec<RequestId> = (1..=8u32).map(|i| rt.acquire(NodeId::new(i))).collect();
        // Shut down immediately: whatever was not served must be
        // terminal (completed or abandoned), never stuck pending.
        let report = rt.shutdown();
        assert_eq!(report.requests_injected, 8);
        assert_eq!(report.requests_completed + report.requests_abandoned, 8);
        assert!(report.safety.is_clean(), "safety: {report:?}");
        let _ = ids;
    }

    #[test]
    fn large_tick_schedules_map_beyond_the_u32_clamp() {
        // The wall-clock arithmetic bugfix: tick→wall conversion happens
        // in u64 nanoseconds. Before the fix, `instant_of` and
        // `set_timer` clamped the *tick count* to u32::MAX, collapsing
        // every schedule entry beyond ≈ 2.4 days (at a 50µs tick) onto
        // the same instant.
        let huge_ticks = 1u64 << 40;
        assert_eq!(ticks_to_wall(50_000, huge_ticks), Duration::from_nanos(huge_ticks * 50_000),);
        // Saturation, not wraparound, at the u64 ceiling.
        assert_eq!(ticks_to_wall(u64::MAX, 2), Duration::from_nanos(u64::MAX));

        // And the live mapping a scheduled workload would use.
        let rt = rt(2, 1);
        let mapped = rt.instant_of(SimTime::from_ticks(huge_ticks));
        let expected = rt.shared.epoch + Duration::from_nanos(huge_ticks * 50_000);
        assert_eq!(mapped, expected);
        let clamped = rt.shared.epoch + Duration::from_micros(50).saturating_mul(u32::MAX);
        assert!(mapped > clamped, "a 2^40-tick arrival must land beyond the old u32 clamp");
        let report = rt.shutdown();
        assert!(report.is_clean(), "oracles: {report:?}");
    }

    #[test]
    fn scripted_drop_destroys_the_legacy_duplicate_too() {
        use oc_sim::{FaultPhase, FaultPhaseKind};
        // The fault-ordering bugfix, runtime side: a legacy window that
        // duplicates EVERY message overlaps a scripted phase that drops
        // EVERY message. Decide-before-act means the drop verdict
        // destroys the original *and* its would-be duplicate; the buggy
        // order enqueued the duplicate before the script ruled.
        let mut cfg = config(2);
        cfg.faults = RuntimeFaults {
            window_from: Duration::ZERO,
            window_until: Duration::from_secs(3600),
            loss_per_mille: 0,
            duplicate_per_mille: 1000,
        };
        let script = FaultScript::none().with_phase(FaultPhase {
            from: SimTime::from_ticks(0),
            until: SimTime::from_ticks(u64::MAX),
            kind: FaultPhaseKind::LossDup { loss_per_mille: 1000, duplicate_per_mille: 0 },
        });
        let rt = Runtime::start_scripted(cfg, script, OpenCubeNode::build_all(protocol(4)));
        // Node 2 does not hold the token, so the acquire must send — and
        // every send dies on the scripted loss.
        let _id = rt.acquire(NodeId::new(2));
        std::thread::sleep(Duration::from_millis(50));
        let report = rt.shutdown();
        assert!(report.lost_to_faults > 0, "every send must hit the scripted loss: {report:?}");
        assert_eq!(
            report.duplicated_deliveries, 0,
            "a dropped send must not leave a legacy duplicate behind"
        );
        assert_eq!(report.cs_entries, 0);
        assert!(report.safety.is_clean(), "safety: {report:?}");
    }

    #[test]
    fn namespaces_are_independent_lock_instances() {
        let mut cfg = config(2);
        cfg.routers = 2;
        cfg.batch = 32;
        let populations: Vec<Vec<OpenCubeNode>> =
            (0..4).map(|_| OpenCubeNode::build_all(protocol(4))).collect();
        let rt = Runtime::start_multi(cfg, populations);
        assert_eq!(rt.namespaces(), 4);
        assert_eq!(rt.len(), 16);
        assert_eq!(rt.namespace_len(2), 4);
        let mut ids = Vec::new();
        for ns in 0..4 {
            for i in 1..=4u32 {
                ids.push(rt.acquire_in(ns, NodeId::new(i)));
            }
        }
        assert_eq!(rt.namespace_of(ids[5]), Some(1));
        assert!(rt.await_cs_entries(16, Duration::from_secs(30)));
        assert!(rt.await_settled(Duration::from_secs(30)));
        assert!(rt.cs_entries_in(3) >= 4);
        let report = rt.shutdown();
        assert_eq!(report.cs_entries, 16);
        assert_eq!(report.namespaces, 4);
        assert_eq!(report.requests_completed, 16);
        assert_eq!(report.terminal_token_census, 4, "one token per namespace");
        assert!(report.is_clean(), "oracles: {report:?}");
    }

    #[test]
    fn watched_auto_release_closed_loop() {
        // The closed-loop client primitive: block on the watcher, never
        // sleep-poll; auto-release cycles the CS without a lease.
        let rt = rt(4, 2);
        let watcher = rt.watcher();
        for _ in 0..100 {
            let id = rt.acquire_watched(0, NodeId::new(1), &watcher, true);
            let (done, status) = watcher.recv_timeout(Duration::from_secs(30)).expect("completion");
            assert_eq!(done, id);
            assert_eq!(status, RequestStatus::Completed);
        }
        assert!(rt.await_settled(Duration::from_secs(10)));
        let report = rt.shutdown();
        assert_eq!(report.cs_entries, 100);
        assert_eq!(report.requests_completed, 100);
        assert!(report.is_clean(), "oracles: {report:?}");
    }
}

//! # oc-runtime — the real asynchronous execution substrate
//!
//! Where `oc-sim` runs protocols in deterministic virtual time, this crate
//! runs the *same* [`Protocol`] state machines on real OS threads with
//! crossbeam channels: one thread per node, plus a router thread that
//! models the network (per-message random delays bounded by δ) and the
//! timer service. Nothing about the protocol changes — that is the point
//! of the sans-io design.
//!
//! The runtime provides the same failure model as the paper: fail-stop
//! crash (the node wipes volatile state and discards everything delivered
//! while down — equivalent to losing in-flight messages) and recovery.
//!
//! ## Example
//!
//! ```
//! use oc_algo::{Config, OpenCubeNode};
//! use oc_runtime::{Runtime, RuntimeConfig};
//! use oc_sim::SimDuration;
//! use oc_topology::NodeId;
//! use std::time::Duration;
//!
//! let tick = Duration::from_micros(50);
//! let config = Config::new(
//!     8,
//!     SimDuration::from_ticks(40), // δ = 40 ticks = 2ms
//!     SimDuration::from_ticks(20),
//! );
//! let rt = Runtime::start(
//!     RuntimeConfig {
//!         tick,
//!         max_network_delay: Duration::from_millis(1),
//!         cs_duration: Duration::from_micros(500),
//!     },
//!     OpenCubeNode::build_all(config),
//! );
//! rt.request_cs(NodeId::new(5));
//! rt.request_cs(NodeId::new(3));
//! assert!(rt.await_cs_entries(2, Duration::from_secs(10)));
//! let report = rt.shutdown();
//! assert_eq!(report.cs_entries, 2);
//! assert!(report.mutual_exclusion_held);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use oc_sim::{
    drive, drive_recovery, ActionSink, NodeEvent, Outbox, Protocol, SimDuration, TimerRow,
};
use oc_topology::NodeId;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Configuration of the threaded runtime.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Real-time length of one protocol tick (converts the protocol's
    /// `SimDuration` timer delays into wall-clock time). Choose it so that
    /// the protocol's δ (in ticks) times `tick` exceeds
    /// `max_network_delay`.
    pub tick: Duration,
    /// Upper bound on the per-message delay the router injects.
    pub max_network_delay: Duration,
    /// How long a node stays in the critical section.
    pub cs_duration: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            tick: Duration::from_micros(50),
            max_network_delay: Duration::from_millis(1),
            cs_duration: Duration::from_micros(500),
        }
    }
}

/// Final report of a runtime session.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Completed critical sections.
    pub cs_entries: u64,
    /// Messages sent over the router.
    pub messages_sent: u64,
    /// `true` if no two nodes were ever inside the critical section
    /// simultaneously.
    pub mutual_exclusion_held: bool,
}

enum NodeCmd<M> {
    Event(NodeEvent<M>),
    Crash,
    Recover,
    Stop,
}

struct RouteReq<M> {
    deliver_at: Instant,
    to: NodeId,
    cmd: NodeCmd<M>,
}

/// Shared safety monitor: CS occupancy cross-checked by every node thread.
struct Monitor {
    occupant: Mutex<Option<NodeId>>,
    violations: AtomicU64,
    cs_entries: AtomicU64,
    messages: AtomicU64,
}

/// The threaded runtime handle.
pub struct Runtime<P: Protocol> {
    router_tx: Sender<RouteReq<P::Msg>>,
    node_handles: Vec<JoinHandle<()>>,
    router_handle: Option<JoinHandle<()>>,
    monitor: Arc<Monitor>,
    n: usize,
    _marker: std::marker::PhantomData<P>,
}

impl<P: Protocol + Send + 'static> Runtime<P> {
    /// Starts one thread per node plus the router. `nodes[k]` must have
    /// identity `k + 1`.
    ///
    /// # Panics
    ///
    /// Panics if a node's `id()` disagrees with its position.
    #[must_use]
    pub fn start(config: RuntimeConfig, nodes: Vec<P>) -> Self {
        for (k, node) in nodes.iter().enumerate() {
            assert_eq!(node.id(), NodeId::new(k as u32 + 1), "node order mismatch");
        }
        let n = nodes.len();
        let monitor = Arc::new(Monitor {
            occupant: Mutex::new(None),
            violations: AtomicU64::new(0),
            cs_entries: AtomicU64::new(0),
            messages: AtomicU64::new(0),
        });

        let (router_tx, router_rx) = unbounded::<RouteReq<P::Msg>>();
        let mut mailboxes: Vec<Sender<NodeCmd<P::Msg>>> = Vec::with_capacity(n);
        let mut node_handles = Vec::with_capacity(n);

        for node in nodes {
            let (tx, rx) = unbounded::<NodeCmd<P::Msg>>();
            mailboxes.push(tx);
            let router_tx = router_tx.clone();
            let monitor = Arc::clone(&monitor);
            node_handles.push(std::thread::spawn(move || {
                node_main(node, rx, router_tx, monitor, config);
            }));
        }

        let router_handle = std::thread::spawn(move || router_main(router_rx, mailboxes));

        Runtime {
            router_tx,
            node_handles,
            router_handle: Some(router_handle),
            monitor,
            n,
            _marker: std::marker::PhantomData,
        }
    }

    /// Injects a local `enter_cs` call at `node`.
    pub fn request_cs(&self, node: NodeId) {
        self.route_now(node, NodeCmd::Event(NodeEvent::RequestCs));
    }

    /// Fail-stops `node`.
    pub fn crash(&self, node: NodeId) {
        self.route_now(node, NodeCmd::Crash);
    }

    /// Recovers `node`.
    pub fn recover(&self, node: NodeId) {
        self.route_now(node, NodeCmd::Recover);
    }

    /// Blocks until at least `count` critical sections completed or the
    /// timeout elapses; returns whether the count was reached.
    #[must_use]
    pub fn await_cs_entries(&self, count: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.monitor.cs_entries.load(Ordering::SeqCst) >= count {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.monitor.cs_entries.load(Ordering::SeqCst) >= count
    }

    /// Critical sections completed so far.
    #[must_use]
    pub fn cs_entries(&self) -> u64 {
        self.monitor.cs_entries.load(Ordering::SeqCst)
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the runtime has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Stops all threads and returns the final report.
    #[must_use]
    pub fn shutdown(mut self) -> RuntimeReport {
        for k in 0..self.n {
            self.route_now(NodeId::new(k as u32 + 1), NodeCmd::Stop);
        }
        for handle in self.node_handles.drain(..) {
            let _ = handle.join();
        }
        // All node threads (and their router_tx clones) are gone; dropping
        // ours lets the router drain and exit.
        let (dead_tx, _) = unbounded();
        drop(std::mem::replace(&mut self.router_tx, dead_tx));
        if let Some(handle) = self.router_handle.take() {
            let _ = handle.join();
        }
        RuntimeReport {
            cs_entries: self.monitor.cs_entries.load(Ordering::SeqCst),
            messages_sent: self.monitor.messages.load(Ordering::SeqCst),
            mutual_exclusion_held: self.monitor.violations.load(Ordering::SeqCst) == 0,
        }
    }

    fn route_now(&self, to: NodeId, cmd: NodeCmd<P::Msg>) {
        let _ = self.router_tx.send(RouteReq { deliver_at: Instant::now(), to, cmd });
    }
}

/// The router: a single thread holding the delay queue for network
/// messages, timers and CS expirations.
fn router_main<M: Send + 'static>(rx: Receiver<RouteReq<M>>, mailboxes: Vec<Sender<NodeCmd<M>>>) {
    struct Pending<M> {
        deliver_at: Instant,
        seq: u64,
        to: NodeId,
        cmd: NodeCmd<M>,
    }
    impl<M> PartialEq for Pending<M> {
        fn eq(&self, other: &Self) -> bool {
            self.seq == other.seq
        }
    }
    impl<M> Eq for Pending<M> {}
    impl<M> PartialOrd for Pending<M> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<M> Ord for Pending<M> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
        }
    }

    let mut heap: BinaryHeap<Reverse<Pending<M>>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut open = true;
    while open || !heap.is_empty() {
        // Deliver everything due.
        let now = Instant::now();
        while let Some(Reverse(top)) = heap.peek() {
            if top.deliver_at > now {
                break;
            }
            let Reverse(p) = heap.pop().expect("peeked");
            let idx = p.to.zero_based() as usize;
            if let Some(mb) = mailboxes.get(idx) {
                let _ = mb.send(p.cmd); // a gone node ignores mail
            }
        }
        // Wait for the next deadline or new work.
        let wait =
            heap.peek().map(|Reverse(p)| p.deliver_at.saturating_duration_since(Instant::now()));
        let received = match wait {
            Some(d) if !heap.is_empty() => match rx.recv_timeout(d) {
                Ok(req) => Some(req),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => {
                    // No more senders: sleep out the remaining deadline so
                    // queued deliveries still happen on time.
                    open = false;
                    std::thread::sleep(d);
                    None
                }
            },
            _ => match rx.recv() {
                Ok(req) => Some(req),
                Err(_) => {
                    open = false;
                    None
                }
            },
        };
        if let Some(req) = received {
            seq += 1;
            heap.push(Reverse(Pending {
                deliver_at: req.deliver_at,
                seq,
                to: req.to,
                cmd: req.cmd,
            }));
        }
    }
}

/// Timer events travel through the router as `NodeEvent::Timer(packed)`
/// with the arming's generation packed into the id's high bits; the node
/// thread unpacks and checks it against its [`TimerRow`] on receipt.
/// Protocol timer ids stay below `2^GEN_SHIFT`.
const GEN_SHIFT: u32 = 20;

/// One node's substrate effects: the runtime's [`ActionSink`], handing the
/// engine's actions to the router thread with real-time deadlines. The
/// deliver→step→collect-actions loop itself lives in [`oc_sim::drive`] —
/// the same code path the simulator runs.
struct ThreadSink<'a, M> {
    router_tx: &'a Sender<RouteReq<M>>,
    monitor: &'a Monitor,
    config: &'a RuntimeConfig,
    rng: &'a mut StdRng,
    timers: &'a mut TimerRow,
    next_gen: &'a mut u64,
}

impl<M: Send + 'static> ActionSink<M> for ThreadSink<'_, M> {
    fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.monitor.messages.fetch_add(1, Ordering::SeqCst);
        let delay_ns = self.rng.random_range(0..=self.config.max_network_delay.as_nanos() as u64);
        let _ = self.router_tx.send(RouteReq {
            deliver_at: Instant::now() + Duration::from_nanos(delay_ns),
            to,
            cmd: NodeCmd::Event(NodeEvent::Deliver { from, msg }),
        });
    }

    fn enter_cs(&mut self, node: NodeId) {
        {
            let mut occ = self.monitor.occupant.lock().expect("monitor lock poisoned");
            if occ.is_some() {
                self.monitor.violations.fetch_add(1, Ordering::SeqCst);
            } else {
                *occ = Some(node);
            }
        }
        self.monitor.cs_entries.fetch_add(1, Ordering::SeqCst);
        let _ = self.router_tx.send(RouteReq {
            deliver_at: Instant::now() + self.config.cs_duration,
            to: node,
            cmd: NodeCmd::Event(NodeEvent::ExitCs),
        });
    }

    fn set_timer(&mut self, node: NodeId, timer_id: u64, delay: SimDuration) {
        assert!(timer_id < (1 << GEN_SHIFT), "timer id too large for packing");
        *self.next_gen += 1;
        self.timers.arm(timer_id, *self.next_gen);
        let packed = timer_id | (*self.next_gen << GEN_SHIFT);
        let real_delay =
            self.config.tick.saturating_mul(delay.ticks().min(u64::from(u32::MAX)) as u32);
        let _ = self.router_tx.send(RouteReq {
            deliver_at: Instant::now() + real_delay,
            to: node,
            cmd: NodeCmd::Event(NodeEvent::Timer(packed)),
        });
    }

    fn cancel_timer(&mut self, _node: NodeId, timer_id: u64) {
        self.timers.cancel(timer_id);
    }
}

/// One node's thread: drains its mailbox, runs the protocol through the
/// shared engine driver, executes actions through the router and monitor.
fn node_main<P: Protocol>(
    mut node: P,
    rx: Receiver<NodeCmd<P::Msg>>,
    router_tx: Sender<RouteReq<P::Msg>>,
    monitor: Arc<Monitor>,
    config: RuntimeConfig,
) {
    let id = node.id();
    let mut rng = StdRng::seed_from_u64(u64::from(id.get()) * 0x9E37_79B9);
    let mut out: Outbox<P::Msg> = Outbox::new();
    let mut crashed = false;
    // Lazy timer cancellation, same engine state the simulator uses: only
    // the latest generation of each timer id fires.
    let mut timers = TimerRow::new();
    let mut next_gen = 0u64;

    while let Ok(cmd) = rx.recv() {
        match cmd {
            NodeCmd::Stop => break,
            NodeCmd::Crash => {
                if !crashed {
                    crashed = true;
                    if node.in_cs() {
                        let mut occ = monitor.occupant.lock().expect("monitor lock poisoned");
                        if *occ == Some(id) {
                            *occ = None;
                        }
                    }
                    node.on_crash();
                    timers.clear();
                }
            }
            NodeCmd::Recover => {
                if crashed {
                    crashed = false;
                    let mut sink = ThreadSink {
                        router_tx: &router_tx,
                        monitor: &monitor,
                        config: &config,
                        rng: &mut rng,
                        timers: &mut timers,
                        next_gen: &mut next_gen,
                    };
                    drive_recovery(&mut node, &mut out, &mut sink);
                }
            }
            NodeCmd::Event(ev) => {
                if crashed {
                    continue; // fail-stop: everything delivered while down is lost
                }
                let ev = match ev {
                    NodeEvent::Timer(packed) => {
                        let timer_id = packed & ((1 << GEN_SHIFT) - 1);
                        let generation = packed >> GEN_SHIFT;
                        if !timers.fire(timer_id, generation) {
                            continue; // cancelled or superseded
                        }
                        NodeEvent::Timer(timer_id)
                    }
                    NodeEvent::ExitCs => {
                        let mut occ = monitor.occupant.lock().expect("monitor lock poisoned");
                        if *occ == Some(id) {
                            *occ = None;
                        }
                        drop(occ);
                        NodeEvent::ExitCs
                    }
                    other => other,
                };
                let mut sink = ThreadSink {
                    router_tx: &router_tx,
                    monitor: &monitor,
                    config: &config,
                    rng: &mut rng,
                    timers: &mut timers,
                    next_gen: &mut next_gen,
                };
                drive(&mut node, ev, &mut out, &mut sink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_algo::{Config, OpenCubeNode};
    use oc_sim::SimDuration;

    fn rt(n: usize) -> Runtime<OpenCubeNode> {
        // δ = 40 ticks × 50µs = 2ms ≥ 1ms max network delay.
        let config = Config::new(n, SimDuration::from_ticks(40), SimDuration::from_ticks(20))
            .with_contention_slack(SimDuration::from_ticks(20_000));
        Runtime::start(RuntimeConfig::default(), OpenCubeNode::build_all(config))
    }

    #[test]
    fn serves_requests_across_threads() {
        let rt = rt(8);
        for i in 1..=8u32 {
            rt.request_cs(NodeId::new(i));
        }
        assert!(rt.await_cs_entries(8, Duration::from_secs(30)));
        let report = rt.shutdown();
        assert_eq!(report.cs_entries, 8);
        assert!(report.mutual_exclusion_held);
        assert!(report.messages_sent > 0);
    }

    #[test]
    fn survives_crash_and_recovery() {
        let rt = rt(8);
        rt.request_cs(NodeId::new(5));
        assert!(rt.await_cs_entries(1, Duration::from_secs(30)));
        // Crash the node that now holds the token at the root.
        rt.crash(NodeId::new(5));
        std::thread::sleep(Duration::from_millis(20));
        rt.recover(NodeId::new(5));
        // The system must keep serving.
        rt.request_cs(NodeId::new(2));
        rt.request_cs(NodeId::new(7));
        assert!(rt.await_cs_entries(3, Duration::from_secs(60)));
        let report = rt.shutdown();
        assert!(report.mutual_exclusion_held);
    }

    #[test]
    fn shutdown_is_clean_when_idle() {
        let rt = rt(2);
        let report = rt.shutdown();
        assert_eq!(report.cs_entries, 0);
        assert!(report.mutual_exclusion_held);
    }
}

//! # oc-runtime — the sharded, oracle-checked lock service
//!
//! Where `oc-sim` runs protocols in deterministic virtual time, this
//! crate runs the *same* [`Protocol`] state machines as a real threaded
//! lock service: `n` nodes multiplexed over a configurable **worker
//! pool** (not thread-per-node, so `n = 1024` costs 8 threads, not
//! 1024), plus a router thread that models the network (per-message
//! random delays bounded by δ), the timer service, and CS leases.
//! Nothing about the protocol changes — that is the point of the sans-io
//! design: both substrates execute actions through the same
//! [`oc_sim::drive`] engine loop.
//!
//! On top of the substrate sit the pieces a lock *service* needs:
//!
//! * a client session API — [`Runtime::acquire`] / [`Runtime::release`]
//!   with [`RequestId`]s, per-request lifecycle, and an acquire-to-grant
//!   [`LatencyHistogram`];
//! * crash/recovery and message-loss/duplication injection mirroring the
//!   simulator's `SimConfig`/`LinkFaults` ([`RuntimeFaults`],
//!   [`Runtime::schedule_failures`]);
//! * a linearized event log ([`oc_sim::Trace`], stamped in ticks under
//!   the monitor lock) and *the unmodified `oc_sim` oracles* judging the
//!   execution: the safety [`oc_sim::Oracle`] is fed live from the
//!   monitor, and shutdown builds an [`oc_sim::Horizon`] for the shared
//!   liveness oracle ([`oc_sim::check_horizon`]).
//!
//! ## Example
//!
//! ```
//! use oc_algo::{Config, OpenCubeNode};
//! use oc_runtime::{Runtime, RuntimeConfig};
//! use oc_sim::SimDuration;
//! use oc_topology::NodeId;
//! use std::time::Duration;
//!
//! let config = Config::new(
//!     8,
//!     SimDuration::from_ticks(40), // δ = 40 ticks = 2ms at a 50µs tick
//!     SimDuration::from_ticks(20),
//! );
//! let rt = Runtime::start(RuntimeConfig::default(), OpenCubeNode::build_all(config));
//! let a = rt.acquire(NodeId::new(5));
//! let b = rt.acquire(NodeId::new(3));
//! assert!(rt.await_cs_entries(2, Duration::from_secs(10)));
//! assert!(rt.await_settled(Duration::from_secs(10)));
//! let report = rt.shutdown();
//! assert_eq!(report.cs_entries, 2);
//! assert_eq!(report.requests_completed, 2);
//! assert!(report.is_clean(), "oracles: {:?}", report);
//! # let _ = (a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;
mod histogram;
mod report;
mod session;

pub use faults::RuntimeFaults;
pub use histogram::{LatencyHistogram, LatencySummary};
pub use report::RuntimeReport;
pub use session::{RequestId, RequestStatus};

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use oc_sim::{
    check_horizon, drive, drive_recovery, isolation_from_components, ActionSink, ArrivalSchedule,
    CompiledScript, FailurePlan, FaultScript, Horizon, LinkFate, MessageKind, NodeAtHorizon,
    NodeEvent, Oracle, Outbox, Protocol, SimDuration, SimTime, TimerRow, Trace, TraceRecord,
};
use oc_topology::NodeId;
use rand::{rngs::StdRng, RngExt, SeedableRng};

use session::SessionTable;

/// Configuration of the threaded runtime.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker threads the nodes are sharded over (node `idx` belongs to
    /// worker `idx % workers`). `0` means `min(n, 8)`.
    pub workers: usize,
    /// Real-time length of one protocol tick (converts the protocol's
    /// `SimDuration` timer delays into wall-clock time). Choose it so
    /// that the protocol's δ (in ticks) times `tick` exceeds
    /// `max_network_delay`.
    pub tick: Duration,
    /// Upper bound on the per-message delay the router injects.
    pub max_network_delay: Duration,
    /// How long a granted request holds the critical section before the
    /// lease expires (an explicit [`Runtime::release`] ends it earlier).
    pub cs_duration: Duration,
    /// Seed for the delay- and fault-injection RNGs (per-worker streams
    /// derive from it).
    pub seed: u64,
    /// Link-level fault injection, mirroring `oc_sim::LinkFaults`.
    pub faults: RuntimeFaults,
    /// Record the full linearized event log (costs memory and a lock per
    /// message; CS/crash/recovery events feed the safety oracle even
    /// when this is off).
    pub record_trace: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 0,
            tick: Duration::from_micros(50),
            max_network_delay: Duration::from_millis(1),
            cs_duration: Duration::from_micros(500),
            seed: 0,
            faults: RuntimeFaults::none(),
            record_trace: false,
        }
    }
}

/// Timer events travel through the router as `NodeCmd::Timer(packed)`
/// with the arming's generation packed into the id's high bits; the
/// owning worker unpacks and checks it against the node's [`TimerRow`]
/// on receipt. Protocol timer ids stay below `2^GEN_SHIFT`.
const GEN_SHIFT: u32 = 20;

/// One command addressed to a node, executed by its owning worker.
enum NodeCmd<M> {
    /// A network message arrives.
    Deliver { from: NodeId, msg: M },
    /// A timer fires (generation-packed).
    Timer(u64),
    /// A client request reaches its node (`RequestCs`).
    Acquire(u64),
    /// A client releases a granted request early.
    Release(u64),
    /// The CS lease of generation `lease` expires.
    ExitLease { lease: u64 },
    /// Fail-stop.
    Crash,
    /// Recovery.
    Recover,
    /// Worker shutdown (sent directly, never through the router).
    Stop,
}

struct Targeted<M> {
    to: NodeId,
    cmd: NodeCmd<M>,
}

enum RouterMsg<M> {
    Route { deliver_at: Instant, item: Targeted<M> },
    Stop,
}

/// Monitor: the linearization point of the runtime. Every CS entry/exit,
/// crash, recovery, and (when tracing) message event takes this lock;
/// the lock's acquisition order *is* the linear order in which the
/// unmodified `oc_sim` safety oracle and the trace observe the run.
struct Monitor {
    oracle: Oracle,
    trace: Trace,
}

/// Cross-thread counters (all `SeqCst`; contention is negligible next to
/// channel traffic).
#[derive(Default)]
struct Counters {
    messages_sent: AtomicU64,
    cs_entries: AtomicU64,
    events_processed: AtomicU64,
    crashes: AtomicU64,
    recoveries: AtomicU64,
    lost_to_crashes: AtomicU64,
    lost_to_faults: AtomicU64,
    lost_to_partition: AtomicU64,
    duplicated_deliveries: AtomicU64,
}

struct Shared {
    monitor: Mutex<Monitor>,
    sessions: SessionTable,
    counters: Counters,
    /// Commands alive in the system: incremented before anything enters
    /// the router or a worker mailbox, decremented when a worker finishes
    /// processing it (or the router discards it at shutdown). Zero means
    /// nothing is queued and nothing is mid-processing.
    inflight: AtomicU64,
    /// Token-carrying messages currently in flight — the runtime's share
    /// of the live-token census.
    tokens_in_flight: AtomicU64,
    /// Per-node "has nothing pending" flags, refreshed by the owning
    /// worker after every command (crashed nodes read as idle — the
    /// liveness oracle only judges live nodes).
    idle: Vec<AtomicBool>,
    /// The time-scripted fault program, compiled against the system size.
    /// Phase windows are in protocol ticks, evaluated against
    /// [`Shared::sim_now`] — the same script the simulator consumes, the
    /// tick mapping doing ticks→wall. Empty by default: nothing injected,
    /// no RNG draws.
    script: CompiledScript,
    trace_enabled: bool,
    epoch: Instant,
    tick_nanos: u64,
}

impl Shared {
    /// Elapsed wall time as protocol ticks — the trace/oracle timestamp.
    fn sim_now(&self) -> SimTime {
        let nanos = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SimTime::from_ticks(nanos / self.tick_nanos)
    }

    fn lock_monitor(&self) -> std::sync::MutexGuard<'_, Monitor> {
        self.monitor.lock().expect("monitor poisoned")
    }
}

/// Enqueues `item` for delivery at `deliver_at`. Returns `false` (after
/// undoing the in-flight accounting) if the router is gone — only
/// possible during shutdown.
fn route<M>(
    shared: &Shared,
    router_tx: &Sender<RouterMsg<M>>,
    deliver_at: Instant,
    to: NodeId,
    cmd: NodeCmd<M>,
) -> bool {
    shared.inflight.fetch_add(1, Ordering::SeqCst);
    if router_tx.send(RouterMsg::Route { deliver_at, item: Targeted { to, cmd } }).is_err() {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        false
    } else {
        true
    }
}

/// The threaded runtime handle.
pub struct Runtime<P: Protocol> {
    shared: Arc<Shared>,
    router_tx: Sender<RouterMsg<P::Msg>>,
    worker_txs: Vec<Sender<Targeted<P::Msg>>>,
    worker_handles: Vec<JoinHandle<Vec<WorkerFinal<P>>>>,
    router_handle: Option<JoinHandle<()>>,
    config: RuntimeConfig,
    n: usize,
}

/// One node's state as a worker returns it at shutdown.
struct WorkerFinal<P> {
    idx: usize,
    node: P,
    crashed: bool,
    recovered_ever: bool,
}

impl<P: Protocol + Send + 'static> Runtime<P> {
    /// Starts the worker pool and the router. `nodes[k]` must have
    /// identity `k + 1`.
    ///
    /// # Panics
    ///
    /// Panics if a node's `id()` disagrees with its position, or if the
    /// config's `tick` is zero.
    #[must_use]
    pub fn start(config: RuntimeConfig, nodes: Vec<P>) -> Self {
        Runtime::start_scripted(config, FaultScript::none(), nodes)
    }

    /// Starts the runtime with a time-scripted fault program
    /// ([`oc_sim::FaultScript`]): partitions, one-way degradation, and
    /// loss/duplication phases whose windows are in protocol ticks —
    /// the *same* script the simulator consumes, mapped onto the wall
    /// clock through the configured `tick`.
    ///
    /// # Panics
    ///
    /// Panics like [`Runtime::start`], or if the script references nodes
    /// outside the system.
    #[must_use]
    pub fn start_scripted(mut config: RuntimeConfig, script: FaultScript, nodes: Vec<P>) -> Self {
        for (k, node) in nodes.iter().enumerate() {
            assert_eq!(node.id(), NodeId::new(k as u32 + 1), "node order mismatch");
        }
        assert!(config.tick > Duration::ZERO, "tick must be positive");
        let n = nodes.len();
        let workers = match config.workers {
            0 => n.clamp(1, 8),
            w => w.min(n.max(1)),
        };
        config.workers = workers;

        let shared = Arc::new(Shared {
            monitor: Mutex::new(Monitor {
                oracle: Oracle::new(),
                trace: Trace::new(config.record_trace),
            }),
            sessions: SessionTable::new(n),
            counters: Counters::default(),
            inflight: AtomicU64::new(0),
            tokens_in_flight: AtomicU64::new(0),
            idle: (0..n).map(|_| AtomicBool::new(true)).collect(),
            script: script.compile(n),
            trace_enabled: config.record_trace,
            epoch: Instant::now(),
            tick_nanos: u64::try_from(config.tick.as_nanos()).unwrap_or(u64::MAX).max(1),
        });

        let (router_tx, router_rx) = unbounded::<RouterMsg<P::Msg>>();
        let mut worker_txs = Vec::with_capacity(workers);
        let mut worker_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = unbounded::<Targeted<P::Msg>>();
            worker_txs.push(tx);
            worker_rxs.push(rx);
        }

        // Shard the nodes: worker w owns indices w, w+W, w+2W, …
        let mut sharded: Vec<Vec<Slot<P>>> = (0..workers).map(|_| Vec::new()).collect();
        for (idx, node) in nodes.into_iter().enumerate() {
            sharded[idx % workers].push(Slot {
                idx,
                node,
                crashed: false,
                recovered_ever: false,
                timers: TimerRow::new(),
                next_gen: 0,
                lease: 0,
            });
        }

        let mut worker_handles = Vec::with_capacity(workers);
        for (slots, rx) in sharded.into_iter().zip(worker_rxs) {
            let shared = Arc::clone(&shared);
            let router_tx = router_tx.clone();
            worker_handles.push(std::thread::spawn(move || {
                worker_main::<P>(slots, rx, router_tx, shared, config)
            }));
        }

        let router_shared = Arc::clone(&shared);
        let mailboxes = worker_txs.clone();
        let router_handle =
            std::thread::spawn(move || router_main::<P::Msg>(router_rx, mailboxes, router_shared));

        Runtime {
            shared,
            router_tx,
            worker_txs,
            worker_handles,
            router_handle: Some(router_handle),
            config,
            n,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the runtime has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Worker threads in the pool.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    fn assert_node(&self, node: NodeId) {
        assert!((1..=self.n as u32).contains(&node.get()), "node {node} outside 1..={}", self.n);
    }

    /// Issues a lock request at `node`, to be granted when the protocol
    /// admits it to the critical section. Returns immediately with the
    /// request's identity; track it with [`Runtime::request_status`].
    pub fn acquire(&self, node: NodeId) -> RequestId {
        self.assert_node(node);
        let id = self.shared.sessions.open(node, Instant::now());
        if !route(&self.shared, &self.router_tx, Instant::now(), node, NodeCmd::Acquire(id.index()))
        {
            let _ = self.shared.sessions.abandon(id);
        }
        id
    }

    /// Compatibility alias for [`Runtime::acquire`], discarding the id.
    pub fn request_cs(&self, node: NodeId) {
        let _ = self.acquire(node);
    }

    /// Releases a granted request early (before its lease expires).
    /// Ignored unless `id` currently holds its node's critical section.
    pub fn release(&self, id: RequestId) {
        if let Some(node) = self.shared.sessions.node_of(id) {
            let _ = route(
                &self.shared,
                &self.router_tx,
                Instant::now(),
                node,
                NodeCmd::Release(id.index()),
            );
        }
    }

    /// One request's lifecycle state.
    #[must_use]
    pub fn request_status(&self, id: RequestId) -> Option<RequestStatus> {
        self.shared.sessions.status(id)
    }

    /// Fail-stops `node` now.
    pub fn crash(&self, node: NodeId) {
        self.assert_node(node);
        let _ = route(&self.shared, &self.router_tx, Instant::now(), node, NodeCmd::Crash);
    }

    /// Recovers `node` now.
    pub fn recover(&self, node: NodeId) {
        self.assert_node(node);
        let _ = route(&self.shared, &self.router_tx, Instant::now(), node, NodeCmd::Recover);
    }

    /// Converts a tick timestamp into the wall-clock instant it maps to.
    fn instant_of(&self, at: SimTime) -> Instant {
        self.shared.epoch
            + self.config.tick.saturating_mul(u32::try_from(at.ticks()).unwrap_or(u32::MAX))
    }

    /// Schedules every arrival of `schedule` (tick timestamps mapped
    /// through the configured `tick`), returning the request ids in
    /// schedule order — the same generators (`oc_sim::workload`) drive
    /// both the simulator and the runtime.
    pub fn schedule_workload(&self, schedule: &ArrivalSchedule) -> Vec<RequestId> {
        schedule
            .arrivals()
            .iter()
            .map(|(at, node)| {
                self.assert_node(*node);
                let deliver_at = self.instant_of(*at);
                let id = self.shared.sessions.open(*node, deliver_at);
                if !route(
                    &self.shared,
                    &self.router_tx,
                    deliver_at,
                    *node,
                    NodeCmd::Acquire(id.index()),
                ) {
                    let _ = self.shared.sessions.abandon(id);
                }
                id
            })
            .collect()
    }

    /// Schedules the crash (and optional recovery) events of `plan`,
    /// tick timestamps mapped through the configured `tick` — the same
    /// `FailurePlan` the simulator consumes.
    pub fn schedule_failures(&self, plan: &FailurePlan) {
        for ev in plan.events() {
            let _ = route(
                &self.shared,
                &self.router_tx,
                self.instant_of(ev.at),
                ev.node,
                NodeCmd::Crash,
            );
            if let Some(recover_at) = ev.recover_at {
                let _ = route(
                    &self.shared,
                    &self.router_tx,
                    self.instant_of(recover_at),
                    ev.node,
                    NodeCmd::Recover,
                );
            }
        }
    }

    /// Critical sections completed so far.
    #[must_use]
    pub fn cs_entries(&self) -> u64 {
        self.shared.counters.cs_entries.load(Ordering::SeqCst)
    }

    /// Snapshot of the acquire-to-grant latency summary.
    #[must_use]
    pub fn latency_summary(&self) -> LatencySummary {
        self.shared.sessions.latency_summary()
    }

    /// Clones the full latency histogram.
    #[must_use]
    pub fn latency_histogram(&self) -> LatencyHistogram {
        self.shared.sessions.histogram()
    }

    /// Blocks until at least `count` critical sections completed or the
    /// timeout elapses; returns whether the count was reached.
    #[must_use]
    pub fn await_cs_entries(&self, count: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.cs_entries() >= count {
                return true;
            }
            if Instant::now() >= deadline {
                return self.cs_entries() >= count;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// `true` if nothing is in flight, every request is terminal, and
    /// every live node is idle — the runtime's quiescence predicate
    /// (the analogue of the simulator's drained event queue).
    #[must_use]
    pub fn settled(&self) -> bool {
        self.shared.inflight.load(Ordering::SeqCst) == 0
            && self.shared.sessions.all_terminal()
            && self.shared.idle.iter().all(|flag| flag.load(Ordering::SeqCst))
            // Re-check: a command processed between the first check and
            // the idle scan would have been visible as in-flight.
            && self.shared.inflight.load(Ordering::SeqCst) == 0
    }

    /// Polls [`Runtime::settled`] until it holds or `timeout` elapses.
    #[must_use]
    pub fn await_settled(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.settled() {
                return true;
            }
            if Instant::now() >= deadline {
                return self.settled();
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }

    /// Stops the service and returns the final report: every worker is
    /// joined, the router's queue is discarded, and every request ends
    /// in a terminal state (still-pending ones become `Abandoned`,
    /// granted ones `Completed`). The safety report carries the whole
    /// run; the liveness oracle judges the shutdown horizon — call
    /// [`Runtime::await_settled`] first if the run is supposed to have
    /// converged.
    #[must_use]
    pub fn shutdown(mut self) -> RuntimeReport {
        let wall = self.shared.epoch.elapsed();
        let horizon_ticks = self.shared.sim_now();
        let drained = self.settled();
        let mut finals = self.stop_threads();
        assert_eq!(finals.len(), self.n, "a worker panicked; its shard's final state is lost");
        finals.sort_by_key(|f| f.idx);

        let shared = &self.shared;
        let _ = shared.sessions.finalize();
        let (completed, abandoned) = shared.sessions.terminal_counts();
        let injected = shared.sessions.opened();

        // Terminal token census: live holders plus tokens still in
        // flight (nonzero only on a forced shutdown). The *safety* census
        // counts only holders at the highest witnessed epoch — a fenced-
        // out stale token awaiting discard is the current token's
        // predecessor, not a duplicate (identical to the total under
        // `Hardening::None`, where every epoch is 0).
        let live_held = || finals.iter().filter(|f| !f.crashed && f.node.holds_token());
        let holders = live_held().count();
        let max_epoch = live_held().map(|f| f.node.token_epoch()).max().unwrap_or(0);
        let holders_at_max = live_held().filter(|f| f.node.token_epoch() == max_epoch).count();
        let in_flight = shared.tokens_in_flight.load(Ordering::SeqCst) as usize;
        let census = holders + in_flight;
        let census_at_max = holders_at_max + in_flight;

        let counters = &shared.counters;
        let cs_entries = counters.cs_entries.load(Ordering::SeqCst);
        // Partition awareness at the shutdown horizon, mirroring the
        // simulator's `World::partition_isolation`. Pending requests were
        // just finalized into `abandoned`, so `unreachable` stays 0.
        let isolated = isolation_at(&shared.script, horizon_ticks, drained, &finals, census);
        let horizon = Horizon {
            drained,
            events: counters.events_processed.load(Ordering::SeqCst),
            injected,
            served: cs_entries,
            abandoned,
            unreachable: 0,
            live_token_census: census,
            nodes: finals
                .iter()
                .map(|f| NodeAtHorizon {
                    node: NodeId::new(f.idx as u32 + 1),
                    alive: !f.crashed,
                    idle: f.node.is_idle(),
                    recovered: f.recovered_ever,
                    isolated: isolated[f.idx],
                    quorum_blocked: !f.crashed && f.node.quorum_blocked(),
                })
                .collect(),
        };
        let liveness = check_horizon(&horizon);

        let (safety, trace) = {
            let mut monitor = shared.lock_monitor();
            let at = shared.sim_now();
            monitor.oracle.token_census(at, census_at_max);
            let safety = monitor.oracle.report().clone();
            let trace = std::mem::replace(&mut monitor.trace, Trace::new(false));
            (safety, trace)
        };

        RuntimeReport {
            cs_entries,
            messages_sent: counters.messages_sent.load(Ordering::SeqCst),
            events_processed: counters.events_processed.load(Ordering::SeqCst),
            requests_injected: injected,
            requests_completed: completed,
            requests_abandoned: abandoned,
            crashes: counters.crashes.load(Ordering::SeqCst),
            recoveries: counters.recoveries.load(Ordering::SeqCst),
            lost_to_crashes: counters.lost_to_crashes.load(Ordering::SeqCst),
            lost_to_faults: counters.lost_to_faults.load(Ordering::SeqCst),
            lost_to_partition: counters.lost_to_partition.load(Ordering::SeqCst),
            duplicated_deliveries: counters.duplicated_deliveries.load(Ordering::SeqCst),
            terminal_token_census: census,
            drained,
            safety,
            liveness,
            latency: shared.sessions.latency_summary(),
            trace,
            wall,
        }
    }
}

impl<P: Protocol> Runtime<P> {
    /// Stops the router, then the workers, and joins everything —
    /// mailbox FIFO means commands already delivered to a worker are
    /// processed before its Stop. Idempotent: joined handles are taken,
    /// so a second call is a no-op returning nothing.
    fn stop_threads(&mut self) -> Vec<WorkerFinal<P>> {
        let _ = self.router_tx.send(RouterMsg::Stop);
        if let Some(handle) = self.router_handle.take() {
            let _ = handle.join();
        }
        if self.worker_handles.is_empty() {
            return Vec::new();
        }
        for tx in &self.worker_txs {
            self.shared.inflight.fetch_add(1, Ordering::SeqCst);
            if tx.send(Targeted { to: NodeId::new(1), cmd: NodeCmd::Stop }).is_err() {
                self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let mut finals: Vec<WorkerFinal<P>> = Vec::with_capacity(self.n);
        for handle in self.worker_handles.drain(..) {
            // A panicked worker yields nothing; shutdown() notices the
            // missing nodes and panics loudly there — panicking here
            // would abort the process when stop runs during unwinding.
            finals.extend(handle.join().unwrap_or_default());
        }
        finals
    }
}

/// Dropping a runtime without [`Runtime::shutdown`] (an early return, a
/// panicking test) must not strand the router and worker threads: the
/// channel topology is a cycle (workers hold router senders, the router
/// holds worker senders), so nobody would ever observe disconnection.
/// Drop performs the same stop sequence and discards the final states.
impl<P: Protocol> Drop for Runtime<P> {
    fn drop(&mut self) {
        let _ = self.stop_threads();
    }
}

// --------------------------------------------------------------------
// Router
// --------------------------------------------------------------------

/// The router: a single thread holding the delay queue for network
/// messages, timers, CS leases, and scheduled crash/recovery commands.
fn router_main<M: MessageKind + Send + 'static>(
    rx: Receiver<RouterMsg<M>>,
    mailboxes: Vec<Sender<Targeted<M>>>,
    shared: Arc<Shared>,
) {
    struct Pending<M> {
        deliver_at: Instant,
        seq: u64,
        item: Targeted<M>,
    }
    impl<M> PartialEq for Pending<M> {
        fn eq(&self, other: &Self) -> bool {
            self.seq == other.seq
        }
    }
    impl<M> Eq for Pending<M> {}
    impl<M> PartialOrd for Pending<M> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<M> Ord for Pending<M> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
        }
    }

    /// A command that will never be processed leaves the in-flight count
    /// (and, for a token-carrying delivery, the token census).
    fn discard<M: MessageKind>(shared: &Shared, item: &Targeted<M>) {
        if let NodeCmd::Deliver { msg, .. } = &item.cmd {
            if msg.carries_token() {
                shared.tokens_in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        }
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
    }

    let workers = mailboxes.len();
    let mut heap: BinaryHeap<Reverse<Pending<M>>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut open = true;
    'outer: while open || !heap.is_empty() {
        // Deliver everything due.
        let now = Instant::now();
        while let Some(Reverse(top)) = heap.peek() {
            if top.deliver_at > now {
                break;
            }
            let Reverse(p) = heap.pop().expect("peeked");
            let w = (p.item.to.zero_based() as usize) % workers;
            // The vendored channel consumes the item on a failed send,
            // so the token flag must be read before attempting it.
            let token_deliver = matches!(
                &p.item.cmd,
                NodeCmd::Deliver { msg, .. } if msg.carries_token()
            );
            if mailboxes[w].send(p.item).is_err() {
                // Worker gone (shutdown): the command dies here.
                if token_deliver {
                    shared.tokens_in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                shared.inflight.fetch_sub(1, Ordering::SeqCst);
            }
        }
        // Wait for the next deadline or new work.
        let wait =
            heap.peek().map(|Reverse(p)| p.deliver_at.saturating_duration_since(Instant::now()));
        let received = match wait {
            Some(d) if !heap.is_empty() => match rx.recv_timeout(d) {
                Ok(msg) => Some(msg),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => {
                    // No more senders: sleep out the remaining deadline so
                    // queued deliveries still happen on time.
                    open = false;
                    std::thread::sleep(d);
                    None
                }
            },
            _ => match rx.recv() {
                Ok(msg) => Some(msg),
                Err(_) => {
                    open = false;
                    None
                }
            },
        };
        match received {
            Some(RouterMsg::Route { deliver_at, item }) => {
                seq += 1;
                heap.push(Reverse(Pending { deliver_at, seq, item }));
            }
            Some(RouterMsg::Stop) => {
                // Discard everything undelivered — the delay heap AND
                // whatever is still queued in the channel behind this
                // Stop — with the same accounting, so the in-flight
                // count and the token census agree on what the forced
                // shutdown destroyed, whichever queue it sat in.
                for Reverse(p) in heap.drain() {
                    discard(&shared, &p.item);
                }
                while let Ok(msg) = rx.try_recv() {
                    if let RouterMsg::Route { item, .. } = msg {
                        discard(&shared, &item);
                    }
                }
                break 'outer;
            }
            None => {}
        }
    }
}

// --------------------------------------------------------------------
// Workers
// --------------------------------------------------------------------

/// One node's substrate state within its worker's shard.
struct Slot<P> {
    idx: usize,
    node: P,
    crashed: bool,
    recovered_ever: bool,
    timers: TimerRow,
    next_gen: u64,
    lease: u64,
}

/// One node's substrate effects: the runtime's [`ActionSink`], handing
/// the engine's actions to the router thread with real-time deadlines.
/// The deliver→step→collect-actions loop itself lives in
/// [`oc_sim::drive`] — the same code path the simulator runs.
struct ThreadSink<'a, M> {
    shared: &'a Shared,
    router_tx: &'a Sender<RouterMsg<M>>,
    config: &'a RuntimeConfig,
    rng: &'a mut StdRng,
    timers: &'a mut TimerRow,
    next_gen: &'a mut u64,
    lease: &'a mut u64,
}

impl<M: MessageKind + core::fmt::Debug + Clone + Send + 'static> ActionSink<M>
    for ThreadSink<'_, M>
{
    fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        let shared = self.shared;
        shared.counters.messages_sent.fetch_add(1, Ordering::SeqCst);
        if shared.trace_enabled {
            let mut monitor = shared.lock_monitor();
            let at = shared.sim_now();
            monitor.trace.push(
                at,
                TraceRecord::Send { from, to, kind: msg.kind(), desc: format!("{msg:?}") },
            );
        }
        // A standing partition destroys every crossing message before
        // any probabilistic fault machinery runs (deterministic, no RNG
        // draw) — mirroring the simulator: the legacy duplication window
        // below can never smuggle a copy across the cut.
        let now_ticks = shared.sim_now();
        if shared.script.active_at(now_ticks) && shared.script.cut(now_ticks, from, to) {
            shared.counters.lost_to_partition.fetch_add(1, Ordering::SeqCst);
            return;
        }
        // Link faults, mirroring the simulator's order: loss first (a
        // lost token was never in flight as far as the census is
        // concerned), then duplication (tokens exempt).
        let faults = &self.config.faults;
        if faults.active_at(shared.epoch.elapsed()) {
            if faults.loss_per_mille > 0
                && self.rng.random_range(0..1000u32) < u32::from(faults.loss_per_mille)
            {
                shared.counters.lost_to_faults.fetch_add(1, Ordering::SeqCst);
                return;
            }
            if faults.duplicate_per_mille > 0
                && !msg.carries_token()
                && self.rng.random_range(0..1000u32) < u32::from(faults.duplicate_per_mille)
            {
                shared.counters.duplicated_deliveries.fetch_add(1, Ordering::SeqCst);
                let delay = self.sample_delay();
                let _ = route(
                    shared,
                    self.router_tx,
                    Instant::now() + delay,
                    to,
                    NodeCmd::Deliver { from, msg: msg.clone() },
                );
            }
        }
        // The scripted fault program, evaluated at the tick clock — the
        // same order and semantics as the simulator's send path (the
        // partition case was already decided above).
        if shared.script.active_at(now_ticks) {
            match shared.script.probabilistic_fate(
                now_ticks,
                from,
                to,
                msg.carries_token(),
                self.rng,
            ) {
                LinkFate::Deliver => {}
                LinkFate::DropPartition => {
                    unreachable!("probabilistic_fate skips partition phases by construction")
                }
                LinkFate::DropLoss => {
                    shared.counters.lost_to_faults.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                LinkFate::DeliverAndDuplicate => {
                    shared.counters.duplicated_deliveries.fetch_add(1, Ordering::SeqCst);
                    let delay = self.sample_delay();
                    let _ = route(
                        shared,
                        self.router_tx,
                        Instant::now() + delay,
                        to,
                        NodeCmd::Deliver { from, msg: msg.clone() },
                    );
                }
            }
        }
        let carries_token = msg.carries_token();
        if carries_token {
            shared.tokens_in_flight.fetch_add(1, Ordering::SeqCst);
        }
        let delay = self.sample_delay();
        if !route(
            shared,
            self.router_tx,
            Instant::now() + delay,
            to,
            NodeCmd::Deliver { from, msg },
        ) && carries_token
        {
            // Router gone (shutdown): the message — and its token — die.
            // `route` already undid the in-flight count; undo the census.
            shared.tokens_in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn enter_cs(&mut self, node: NodeId, token_epoch: u64) {
        let shared = self.shared;
        *self.lease += 1;
        {
            let mut monitor = shared.lock_monitor();
            let at = shared.sim_now();
            monitor.oracle.enter_cs(at, node, token_epoch);
            monitor.trace.push(at, TraceRecord::EnterCs(node));
        }
        shared.counters.cs_entries.fetch_add(1, Ordering::SeqCst);
        let _ = shared.sessions.grant(node, Instant::now());
        let _ = route(
            shared,
            self.router_tx,
            Instant::now() + self.config.cs_duration,
            node,
            NodeCmd::ExitLease { lease: *self.lease },
        );
    }

    fn set_timer(&mut self, node: NodeId, timer_id: u64, delay: SimDuration) {
        assert!(timer_id < (1 << GEN_SHIFT), "timer id too large for packing");
        *self.next_gen += 1;
        self.timers.arm(timer_id, *self.next_gen);
        let packed = timer_id | (*self.next_gen << GEN_SHIFT);
        let real_delay =
            self.config.tick.saturating_mul(delay.ticks().min(u64::from(u32::MAX)) as u32);
        let _ = route(
            self.shared,
            self.router_tx,
            Instant::now() + real_delay,
            node,
            NodeCmd::Timer(packed),
        );
    }

    fn cancel_timer(&mut self, _node: NodeId, timer_id: u64) {
        self.timers.cancel(timer_id);
    }
}

impl<M> ThreadSink<'_, M> {
    fn sample_delay(&mut self) -> Duration {
        let max = u64::try_from(self.config.max_network_delay.as_nanos()).unwrap_or(u64::MAX);
        Duration::from_nanos(self.rng.random_range(0..=max))
    }
}

/// One worker's thread: drains its mailbox, runs its shard of nodes
/// through the shared engine driver, executes actions through the router
/// and monitor. Returns the shard's final node states for the shutdown
/// horizon.
fn worker_main<P: Protocol + Send + 'static>(
    mut slots: Vec<Slot<P>>,
    rx: Receiver<Targeted<P::Msg>>,
    router_tx: Sender<RouterMsg<P::Msg>>,
    shared: Arc<Shared>,
    config: RuntimeConfig,
) -> Vec<WorkerFinal<P>> {
    let workers = config.workers;
    let mut rng = StdRng::seed_from_u64(
        config.seed
            ^ slots.first().map_or(0, |s| (s.idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let mut out: Outbox<P::Msg> = Outbox::new();

    while let Ok(Targeted { to, cmd }) = rx.recv() {
        if matches!(cmd, NodeCmd::Stop) {
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            break;
        }
        shared.counters.events_processed.fetch_add(1, Ordering::SeqCst);
        let slot_pos = (to.zero_based() as usize) / workers;
        let slot = &mut slots[slot_pos];
        debug_assert_eq!(slot.idx, to.zero_based() as usize, "misrouted command");
        process(slot, to, cmd, &mut out, &router_tx, &shared, &config, &mut rng);
        shared.idle[slot.idx].store(slot.crashed || slot.node.is_idle(), Ordering::SeqCst);
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
    }
    slots
        .into_iter()
        .map(|slot| WorkerFinal {
            idx: slot.idx,
            node: slot.node,
            crashed: slot.crashed,
            recovered_ever: slot.recovered_ever,
        })
        .collect()
}

/// The single construction point for [`ThreadSink`]'s split borrows:
/// builds the slot's sink and feeds one event through the shared engine
/// driver (`None` runs the recovery hook instead).
fn drive_slot<P: Protocol + Send + 'static>(
    slot: &mut Slot<P>,
    event: Option<NodeEvent<P::Msg>>,
    out: &mut Outbox<P::Msg>,
    router_tx: &Sender<RouterMsg<P::Msg>>,
    shared: &Shared,
    config: &RuntimeConfig,
    rng: &mut StdRng,
) {
    let mut sink = ThreadSink {
        shared,
        router_tx,
        config,
        rng,
        timers: &mut slot.timers,
        next_gen: &mut slot.next_gen,
        lease: &mut slot.lease,
    };
    match event {
        Some(event) => drive(&mut slot.node, event, out, &mut sink),
        None => drive_recovery(&mut slot.node, out, &mut sink),
    }
}

/// Executes one command against its node.
#[allow(clippy::too_many_arguments)]
fn process<P: Protocol + Send + 'static>(
    slot: &mut Slot<P>,
    node_id: NodeId,
    cmd: NodeCmd<P::Msg>,
    out: &mut Outbox<P::Msg>,
    router_tx: &Sender<RouterMsg<P::Msg>>,
    shared: &Shared,
    config: &RuntimeConfig,
    rng: &mut StdRng,
) {
    match cmd {
        NodeCmd::Stop => unreachable!("handled by the worker loop"),
        NodeCmd::Deliver { from, msg } => {
            if msg.carries_token() {
                shared.tokens_in_flight.fetch_sub(1, Ordering::SeqCst);
            }
            if slot.crashed {
                // Fail-stop: everything delivered while down is lost.
                shared.counters.lost_to_crashes.fetch_add(1, Ordering::SeqCst);
                return;
            }
            if shared.trace_enabled {
                let mut monitor = shared.lock_monitor();
                let at = shared.sim_now();
                monitor.trace.push(
                    at,
                    TraceRecord::Deliver {
                        from,
                        to: node_id,
                        kind: msg.kind(),
                        desc: format!("{msg:?}"),
                    },
                );
            }
            drive_slot(
                slot,
                Some(NodeEvent::Deliver { from, msg }),
                out,
                router_tx,
                shared,
                config,
                rng,
            );
        }
        NodeCmd::Timer(packed) => {
            if slot.crashed {
                return;
            }
            let timer_id = packed & ((1 << GEN_SHIFT) - 1);
            let generation = packed >> GEN_SHIFT;
            if !slot.timers.fire(timer_id, generation) {
                return; // cancelled or superseded
            }
            drive_slot(slot, Some(NodeEvent::Timer(timer_id)), out, router_tx, shared, config, rng);
        }
        NodeCmd::Acquire(id) => {
            let request = RequestId::from_index(id);
            if slot.crashed {
                // The application on a crashed node cannot request; the
                // injection is abandoned, never served.
                let _ = shared.sessions.abandon(request);
                return;
            }
            shared.sessions.activate(request);
            drive_slot(slot, Some(NodeEvent::RequestCs), out, router_tx, shared, config, rng);
        }
        NodeCmd::Release(id) => {
            if slot.crashed
                || !shared.sessions.is_current(RequestId::from_index(id), node_id)
                || !slot.node.in_cs()
            {
                return;
            }
            exit_cs(slot, node_id, out, router_tx, shared, config, rng);
        }
        NodeCmd::ExitLease { lease } => {
            // Stale leases (superseded by a later CS entry, or by a
            // crash) are dropped — the runtime's analogue of the
            // simulator purging a dead CS's scheduled exit.
            if slot.crashed || lease != slot.lease || !slot.node.in_cs() {
                return;
            }
            exit_cs(slot, node_id, out, router_tx, shared, config, rng);
        }
        NodeCmd::Crash => {
            if slot.crashed {
                return;
            }
            slot.crashed = true;
            shared.counters.crashes.fetch_add(1, Ordering::SeqCst);
            {
                let mut monitor = shared.lock_monitor();
                let at = shared.sim_now();
                monitor.oracle.exit_cs(node_id);
                monitor.trace.push(at, TraceRecord::Crash(node_id));
            }
            // All volatile node state is lost — including the
            // application's not-yet-served requests, which are
            // therefore abandoned; a granted request's CS died with the
            // node (its lease is invalidated below).
            let _ = shared.sessions.crash_node(node_id);
            slot.node.on_crash();
            slot.timers.clear();
            slot.lease += 1;
        }
        NodeCmd::Recover => {
            if !slot.crashed {
                return;
            }
            slot.crashed = false;
            slot.recovered_ever = true;
            shared.counters.recoveries.fetch_add(1, Ordering::SeqCst);
            {
                let mut monitor = shared.lock_monitor();
                let at = shared.sim_now();
                monitor.trace.push(at, TraceRecord::Recover(node_id));
            }
            drive_slot(slot, None, out, router_tx, shared, config, rng);
        }
    }
}

/// Partition awareness for the shutdown horizon — the same policy as the
/// simulator's `World::partition_isolation`, through the shared
/// [`oc_sim::isolation_from_components`]. `finals` must be sorted by
/// node index; `census` is the terminal live-token census.
fn isolation_at<P: Protocol>(
    script: &CompiledScript,
    at: SimTime,
    drained: bool,
    finals: &[WorkerFinal<P>],
    census: usize,
) -> Vec<bool> {
    let n = finals.len();
    let alive: Vec<bool> = finals.iter().map(|f| !f.crashed).collect();
    let holders: Vec<bool> = finals.iter().map(|f| !f.crashed && f.node.holds_token()).collect();
    isolation_from_components(
        script.components_at_horizon(at, n, drained),
        &alive,
        &holders,
        census,
    )
}

/// The shared CS-exit path (lease expiry and early release).
fn exit_cs<P: Protocol + Send + 'static>(
    slot: &mut Slot<P>,
    node_id: NodeId,
    out: &mut Outbox<P::Msg>,
    router_tx: &Sender<RouterMsg<P::Msg>>,
    shared: &Shared,
    config: &RuntimeConfig,
    rng: &mut StdRng,
) {
    {
        let mut monitor = shared.lock_monitor();
        let at = shared.sim_now();
        monitor.oracle.exit_cs(node_id);
        monitor.trace.push(at, TraceRecord::ExitCs(node_id));
    }
    let _ = shared.sessions.complete_current(node_id);
    drive_slot(slot, Some(NodeEvent::ExitCs), out, router_tx, shared, config, rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_algo::{Config, OpenCubeNode};
    use oc_sim::SimDuration;

    fn config(workers: usize) -> RuntimeConfig {
        RuntimeConfig { workers, ..RuntimeConfig::default() }
    }

    fn rt(n: usize, workers: usize) -> Runtime<OpenCubeNode> {
        // δ = 40 ticks × 50µs = 2ms ≥ 1ms max network delay.
        let cfg = Config::new(n, SimDuration::from_ticks(40), SimDuration::from_ticks(20))
            .with_contention_slack(SimDuration::from_ticks(20_000));
        Runtime::start(config(workers), OpenCubeNode::build_all(cfg))
    }

    #[test]
    fn serves_requests_across_worker_pool() {
        let rt = rt(8, 3);
        assert_eq!(rt.workers(), 3);
        for i in 1..=8u32 {
            rt.request_cs(NodeId::new(i));
        }
        assert!(rt.await_cs_entries(8, Duration::from_secs(30)));
        assert!(rt.await_settled(Duration::from_secs(30)));
        let report = rt.shutdown();
        assert_eq!(report.cs_entries, 8);
        assert_eq!(report.requests_completed, 8);
        assert_eq!(report.requests_abandoned, 0);
        assert!(report.drained);
        assert!(report.is_clean(), "oracles: {report:?}");
        assert!(report.mutual_exclusion_held());
        assert!(report.messages_sent > 0);
        assert_eq!(report.terminal_token_census, 1);
        assert_eq!(report.latency.count, 8);
        assert!(report.latency.p50_nanos <= report.latency.p99_nanos);
    }

    #[test]
    fn survives_crash_and_recovery_of_the_holder() {
        let rt = rt(8, 4);
        let first = rt.acquire(NodeId::new(5));
        assert!(rt.await_cs_entries(1, Duration::from_secs(30)));
        // Crash the node that now holds the token.
        rt.crash(NodeId::new(5));
        std::thread::sleep(Duration::from_millis(20));
        rt.recover(NodeId::new(5));
        // The system must keep serving.
        rt.request_cs(NodeId::new(2));
        rt.request_cs(NodeId::new(7));
        assert!(rt.await_cs_entries(3, Duration::from_secs(60)));
        assert!(rt.await_settled(Duration::from_secs(60)));
        let report = rt.shutdown();
        assert!(report.is_clean(), "oracles: {report:?}");
        assert_eq!(report.crashes, 1);
        assert_eq!(report.recoveries, 1);
        assert_eq!(rt_status(&report), (3, 0));
        let _ = first;
    }

    fn rt_status(report: &RuntimeReport) -> (u64, u64) {
        (report.requests_completed, report.requests_abandoned)
    }

    #[test]
    fn shutdown_is_clean_when_idle() {
        let rt = rt(2, 1);
        let report = rt.shutdown();
        assert_eq!(report.cs_entries, 0);
        assert!(report.drained);
        assert!(report.is_clean(), "oracles: {report:?}");
    }

    #[test]
    fn abandoned_and_recovered_are_accounted() {
        // The PR-3 accounting parity: a request pending at its node's
        // crash is abandoned (not silently dropped, not counted served),
        // and recoveries are reported.
        let mut cfg = config(2);
        // A long lease keeps node 1 inside the CS while node 6 crashes,
        // so node 6's request is provably still pending at the crash.
        cfg.cs_duration = Duration::from_millis(300);
        let protocol = Config::new(8, SimDuration::from_ticks(40), SimDuration::from_ticks(20))
            .with_contention_slack(SimDuration::from_ticks(20_000));
        let rt = Runtime::start(cfg, OpenCubeNode::build_all(protocol));
        // Occupy the lock from node 1 so node 6's request stays pending.
        let holder = rt.acquire(NodeId::new(1));
        assert!(rt.await_cs_entries(1, Duration::from_secs(30)));
        let doomed = rt.acquire(NodeId::new(6));
        // Give the acquire time to reach node 6, then kill the node.
        std::thread::sleep(Duration::from_millis(10));
        rt.crash(NodeId::new(6));
        std::thread::sleep(Duration::from_millis(10));
        rt.recover(NodeId::new(6));
        assert!(rt.await_settled(Duration::from_secs(60)));
        assert_eq!(rt.request_status(doomed), Some(RequestStatus::Abandoned));
        assert_eq!(rt.request_status(holder), Some(RequestStatus::Completed));
        let report = rt.shutdown();
        assert_eq!(report.requests_injected, 2);
        assert_eq!(report.requests_completed, 1);
        assert_eq!(report.requests_abandoned, 1);
        assert_eq!(report.recoveries, 1);
        assert!(report.is_clean(), "oracles: {report:?}");
    }

    #[test]
    fn early_release_ends_the_lease() {
        let mut cfg = config(2);
        cfg.cs_duration = Duration::from_secs(5); // lease far in the future
        let protocol = Config::new(4, SimDuration::from_ticks(40), SimDuration::from_ticks(20))
            .with_contention_slack(SimDuration::from_ticks(200_000));
        let rt = Runtime::start(cfg, OpenCubeNode::build_all(protocol));
        let id = rt.acquire(NodeId::new(2));
        assert!(rt.await_cs_entries(1, Duration::from_secs(10)));
        assert_eq!(rt.request_status(id), Some(RequestStatus::Granted));
        rt.release(id);
        let deadline = Instant::now() + Duration::from_secs(5);
        while rt.request_status(id) != Some(RequestStatus::Completed) {
            assert!(Instant::now() < deadline, "release did not complete the request");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Well before the 5s lease: the release did it.
        let report = rt.shutdown();
        assert_eq!(report.requests_completed, 1);
        assert!(report.mutual_exclusion_held());
    }

    #[test]
    fn scheduled_workload_and_failures_run() {
        let mut cfg = config(4);
        cfg.tick = Duration::from_micros(20);
        cfg.max_network_delay = Duration::from_micros(400);
        cfg.cs_duration = Duration::from_micros(200);
        cfg.record_trace = true;
        let protocol = Config::new(8, SimDuration::from_ticks(40), SimDuration::from_ticks(10))
            .with_contention_slack(SimDuration::from_ticks(20_000));
        let rt = Runtime::start(cfg, OpenCubeNode::build_all(protocol));
        let mut schedule = ArrivalSchedule::new();
        for i in 1..=8u32 {
            schedule = schedule.then(SimTime::from_ticks(u64::from(i) * 100), NodeId::new(i));
        }
        let ids = rt.schedule_workload(&schedule);
        assert_eq!(ids.len(), 8);
        // Crash a bystander late, recover it, all in ticks.
        let plan = FailurePlan::none().crash_and_recover(
            NodeId::new(4),
            SimTime::from_ticks(30_000),
            SimTime::from_ticks(32_000),
        );
        rt.schedule_failures(&plan);
        assert!(rt.await_settled(Duration::from_secs(60)));
        let report = rt.shutdown();
        assert_eq!(report.crashes, 1);
        assert_eq!(report.recoveries, 1);
        assert!(report.is_clean(), "oracles: {report:?}");
        // The trace was recorded and replaying its CS occupancy through
        // the oracle agrees with the live verdict.
        assert!(!report.trace.records().is_empty());
        let replayed = Oracle::replay_cs(&report.trace);
        assert_eq!(replayed.is_clean(), report.mutual_exclusion_held());
    }

    #[test]
    fn scripted_partition_heals_and_the_service_recovers() {
        use oc_sim::{FaultPhase, FaultPhaseKind};
        // Split the 8-cube into halves for a window much shorter than the
        // suspicion slack, with traffic crossing the cut; after the heal
        // the retry machinery must serve everything and the oracles stay
        // clean. At a 50µs tick, [2000, 6000) ticks ≈ [100ms, 300ms).
        let script = FaultScript::none().with_phase(FaultPhase {
            from: SimTime::from_ticks(2_000),
            until: SimTime::from_ticks(6_000),
            kind: FaultPhaseKind::GroupPartition { p: 2 },
        });
        let protocol = Config::new(8, SimDuration::from_ticks(40), SimDuration::from_ticks(20))
            .with_contention_slack(SimDuration::from_ticks(20_000));
        let rt = Runtime::start_scripted(config(4), script, OpenCubeNode::build_all(protocol));
        let mut schedule = ArrivalSchedule::new();
        for i in 1..=8u32 {
            // One request per node, spread across the partition window.
            schedule = schedule.then(SimTime::from_ticks(u64::from(i) * 800), NodeId::new(i));
        }
        let ids = rt.schedule_workload(&schedule);
        assert_eq!(ids.len(), 8);
        assert!(rt.await_settled(Duration::from_secs(60)));
        let report = rt.shutdown();
        assert!(report.is_clean(), "oracles: {report:?}");
        assert_eq!(report.requests_completed + report.requests_abandoned, 8);
        assert_eq!(report.requests_abandoned, 0, "nobody crashed; the heal must serve everyone");
    }

    #[test]
    fn forced_shutdown_leaves_every_request_terminal() {
        let rt = rt(8, 2);
        let ids: Vec<RequestId> = (1..=8u32).map(|i| rt.acquire(NodeId::new(i))).collect();
        // Shut down immediately: whatever was not served must be
        // terminal (completed or abandoned), never stuck pending.
        let report = rt.shutdown();
        assert_eq!(report.requests_injected, 8);
        assert_eq!(report.requests_completed + report.requests_abandoned, 8);
        assert!(report.safety.is_clean(), "safety: {report:?}");
        let _ = ids;
    }
}

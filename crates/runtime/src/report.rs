//! The final report of a runtime session: counters, oracle verdicts,
//! latency summary, and the linearized trace.

use std::time::Duration;

use oc_sim::{LivenessReport, OracleReport, Trace, Violation};

use crate::histogram::LatencySummary;

/// Everything a finished runtime session can tell you.
///
/// Multi-tenant runs ([`crate::Runtime::start_multi`]) aggregate: the
/// counters sum over every namespace, `terminal_token_census` counts one
/// expected token *per namespace*, and the safety/liveness reports fold
/// the per-namespace oracle verdicts (each namespace is judged by its
/// own unmodified `oc_sim` oracle — mutual exclusion is a per-lock
/// property).
///
/// The accounting mirrors the simulator's `Metrics` plus the liveness
/// oracle's bookkeeping: `requests_injected == requests_completed +
/// requests_abandoned` holds for every shutdown, however abrupt — a
/// request abandoned by a crash of its node *or by the shutdown itself*
/// is still terminal, never silently dropped.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Completed critical sections.
    pub cs_entries: u64,
    /// Protocol messages sent through the router.
    pub messages_sent: u64,
    /// Commands processed across all workers (deliveries, timers,
    /// acquisitions, leases, crashes) — the runtime's events/s numerator.
    pub events_processed: u64,
    /// Requests issued (`acquire` calls plus scheduled arrivals).
    pub requests_injected: u64,
    /// Requests that entered (and left) the critical section.
    pub requests_completed: u64,
    /// Requests never served: their node crashed while they waited, they
    /// were issued to a crashed node, or the shutdown cut them off.
    pub requests_abandoned: u64,
    /// Crashes injected.
    pub crashes: u64,
    /// Recoveries injected.
    pub recoveries: u64,
    /// Messages destroyed because the destination was down at delivery.
    pub lost_to_crashes: u64,
    /// Messages dropped on the wire by injected link faults (loss windows
    /// and scripted degradation/loss phases).
    pub lost_to_faults: u64,
    /// Messages destroyed at a scripted partition boundary
    /// (`Runtime::start_scripted`).
    pub lost_to_partition: u64,
    /// Extra deliveries injected by the duplicate-delivery fault.
    pub duplicated_deliveries: u64,
    /// Live tokens at shutdown: held by live nodes plus in flight,
    /// summed over every namespace (a settled multi-tenant run reports
    /// exactly `namespaces`). The quantity the conformance suite
    /// compares against the simulator's terminal census.
    pub terminal_token_census: usize,
    /// Independent lock namespaces this runtime served (1 unless started
    /// with [`crate::Runtime::start_multi`]).
    pub namespaces: usize,
    /// `true` if the runtime was settled when shutdown began: no
    /// in-flight work, every request terminal, every live node idle.
    /// When `false`, the liveness report contains `HorizonExhausted` (a
    /// forced shutdown is a cut horizon, not convergence).
    pub drained: bool,
    /// The safety oracle's verdict (mutual exclusion, terminal token
    /// census) — the *unmodified* `oc_sim` oracle, fed from the
    /// runtime's linearized monitor.
    pub safety: OracleReport,
    /// The liveness oracle's verdict over the shutdown horizon — the
    /// same `check_horizon` the simulator uses.
    pub liveness: LivenessReport,
    /// Acquire-to-grant latency summary.
    pub latency: LatencySummary,
    /// The linearized event log (empty unless `record_trace` was set).
    pub trace: Trace,
    /// Wall-clock time from start to shutdown.
    pub wall: Duration,
}

impl RuntimeReport {
    /// `true` if no two nodes ever overlapped in the critical section.
    #[must_use]
    pub fn mutual_exclusion_held(&self) -> bool {
        !self
            .safety
            .violations()
            .iter()
            .any(|violation| matches!(violation, Violation::MutualExclusion { .. }))
    }

    /// `true` if every safety and liveness oracle passed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.safety.is_clean() && self.liveness.is_clean()
    }

    /// Completed critical sections per wall-clock second.
    #[must_use]
    pub fn throughput_cs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.cs_entries as f64 / secs
        } else {
            0.0
        }
    }

    /// Worker-processed commands per wall-clock second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events_processed as f64 / secs
        } else {
            0.0
        }
    }
}

//! The client-facing session table: request identities, per-request
//! lifecycle, and the latency histogram.
//!
//! Every `acquire` (immediate or scheduled) opens a request slot. A
//! request's lifecycle is strictly
//! `Pending → Granted → Completed`, short-circuited to `Abandoned` when
//! its node crashes first (or the runtime shuts down before service) —
//! the same accounting the simulator's `World` keeps, so the liveness
//! oracle's `served + abandoned == injected` equation judges both
//! substrates identically.
//!
//! Grant order is per-node FIFO, matching the simulator's
//! `pending_request_times` queues: when a node enters the CS, its oldest
//! *activated* request is the one being served.
//!
//! Two batched-hot-path extras ride on each slot:
//!
//! * **auto-release** — the request exits the CS immediately after entry
//!   instead of waiting out a wall-clock lease, so a closed-loop client
//!   measures acquisition throughput rather than lease pacing;
//! * **watchers** — a registered completion channel is notified once,
//!   when the request reaches a terminal state, replacing status
//!   sleep-polling in closed-loop clients.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use crossbeam_channel::{unbounded, Receiver, Sender};
use oc_topology::NodeId;

use crate::histogram::{LatencyHistogram, LatencySummary};

/// Identity of one `acquire` call, unique within its runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

impl RequestId {
    /// The raw index (dense, in issue order).
    #[must_use]
    pub fn index(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its raw index (crate-internal: ids cross the
    /// router as plain `u64`s).
    pub(crate) fn from_index(index: u64) -> Self {
        RequestId(index)
    }
}

/// Lifecycle state of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Issued, not yet granted.
    Pending,
    /// Inside the critical section right now.
    Granted,
    /// Served: the critical section completed (terminal).
    Completed,
    /// Never served: its node crashed while it waited, it was issued to a
    /// crashed node, or the runtime shut down first (terminal).
    Abandoned,
}

impl RequestStatus {
    /// `true` for the terminal states.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, RequestStatus::Completed | RequestStatus::Abandoned)
    }
}

/// A terminal-state notification: `(request, its terminal status)`.
pub(crate) type Completion = (RequestId, RequestStatus);

#[derive(Debug)]
struct RequestSlot {
    node: NodeId,
    /// Issue time — for scheduled arrivals, the *scheduled* delivery
    /// instant, so open-loop latency includes queueing behind the lock
    /// but not the schedule's lead time.
    t0: Instant,
    status: RequestStatus,
    /// Exit the CS immediately after entry (no wall-clock lease).
    auto_release: bool,
    /// Registered completion channel to notify at the terminal
    /// transition, by watcher index.
    watcher: Option<u32>,
}

struct SessionInner {
    slots: Vec<RequestSlot>,
    /// Activated-but-ungranted requests per node, FIFO.
    pending: Vec<VecDeque<u64>>,
    /// The request currently inside the CS per node, if any.
    current: Vec<Option<u64>>,
    /// Registered completion channels, indexed by `RequestSlot::watcher`.
    /// `None` marks a watcher whose receiver hung up: the slot is pruned
    /// on the first failed send (the index stays reserved so later
    /// registrations keep their identities) and never sent to again.
    watchers: Vec<Option<Sender<Completion>>>,
    histogram: LatencyHistogram,
}

impl SessionInner {
    /// Fires the slot's completion notification, if a watcher is
    /// registered. Call only after a *terminal* transition — each slot
    /// notifies at most once because terminal states never transition
    /// again. A disconnected watcher is pruned: its sender is dropped on
    /// the first failed send, so a departed client's channel does not
    /// keep accumulating (and silently failing) terminal notifications
    /// for the rest of the runtime's life.
    fn notify(&mut self, id: u64) {
        let slot = &self.slots[id as usize];
        debug_assert!(slot.status.is_terminal());
        let Some(w) = slot.watcher else { return };
        let status = slot.status;
        if let Some(tx) = &self.watchers[w as usize] {
            if tx.send((RequestId(id), status)).is_err() {
                self.watchers[w as usize] = None;
            }
        }
    }

    /// Watchers whose receiver is still connected (or has never been
    /// sent to since it hung up) — observability for the prune.
    #[cfg(test)]
    fn live_watchers(&self) -> usize {
        self.watchers.iter().filter(|w| w.is_some()).count()
    }
}

/// Shared, mutex-protected session state (see module docs).
pub(crate) struct SessionTable {
    inner: Mutex<SessionInner>,
}

impl SessionTable {
    pub(crate) fn new(n: usize) -> Self {
        SessionTable {
            inner: Mutex::new(SessionInner {
                slots: Vec::new(),
                pending: vec![VecDeque::new(); n],
                current: vec![None; n],
                watchers: Vec::new(),
                histogram: LatencyHistogram::new(),
            }),
        }
    }

    /// Locks the table, recovering from poison: the table's invariants
    /// are per-slot and every verdict that matters is re-checked by the
    /// oracles at shutdown, so a worker that panicked while holding the
    /// guard must not cascade into panics in every client thread and the
    /// gateway — they read whatever state the panicking writer left,
    /// which is no worse than what any concurrent reader could see.
    fn lock(&self) -> std::sync::MutexGuard<'_, SessionInner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers a completion channel; terminal transitions of slots
    /// opened with the returned index are sent to it.
    pub(crate) fn register_watcher(&self) -> (u32, Receiver<Completion>) {
        let (tx, rx) = unbounded();
        let mut inner = self.lock();
        let idx = inner.watchers.len() as u32;
        inner.watchers.push(Some(tx));
        (idx, rx)
    }

    /// Opens a new request slot (status `Pending`, not yet activated).
    pub(crate) fn open(
        &self,
        node: NodeId,
        t0: Instant,
        auto_release: bool,
        watcher: Option<u32>,
    ) -> RequestId {
        let mut inner = self.lock();
        let id = inner.slots.len() as u64;
        inner.slots.push(RequestSlot {
            node,
            t0,
            status: RequestStatus::Pending,
            auto_release,
            watcher,
        });
        RequestId(id)
    }

    /// Activates a request at its node: it joins the node's FIFO grant
    /// queue. Called by the owning worker when the `Acquire` command is
    /// processed, so queue order matches processing order.
    pub(crate) fn activate(&self, id: RequestId) {
        let mut inner = self.lock();
        let node = inner.slots[id.0 as usize].node;
        inner.pending[node.zero_based() as usize].push_back(id.0);
    }

    /// Abandons one request (issued to a crashed node). Returns `true`
    /// if it was still pending.
    pub(crate) fn abandon(&self, id: RequestId) -> bool {
        let mut inner = self.lock();
        let slot = &mut inner.slots[id.0 as usize];
        if slot.status == RequestStatus::Pending {
            slot.status = RequestStatus::Abandoned;
            inner.notify(id.0);
            true
        } else {
            false
        }
    }

    /// Grants the node's oldest activated request: pops the FIFO, marks
    /// it `Granted`, and records its latency. Returns the request, its
    /// latency, and whether it auto-releases — or `None` if the node
    /// entered the CS with no session request queued.
    pub(crate) fn grant(&self, node: NodeId, now: Instant) -> Option<(RequestId, u64, bool)> {
        let mut inner = self.lock();
        let idx = node.zero_based() as usize;
        let id = inner.pending[idx].pop_front()?;
        let (latency, auto) = {
            let slot = &mut inner.slots[id as usize];
            slot.status = RequestStatus::Granted;
            let latency = u64::try_from(now.saturating_duration_since(slot.t0).as_nanos())
                .unwrap_or(u64::MAX);
            (latency, slot.auto_release)
        };
        inner.current[idx] = Some(id);
        inner.histogram.record(latency);
        Some((RequestId(id), latency, auto))
    }

    /// Completes the node's granted request (CS exit). Returns it, if
    /// one was current.
    pub(crate) fn complete_current(&self, node: NodeId) -> Option<RequestId> {
        let mut inner = self.lock();
        let idx = node.zero_based() as usize;
        let id = inner.current[idx].take()?;
        inner.slots[id as usize].status = RequestStatus::Completed;
        inner.notify(id);
        Some(RequestId(id))
    }

    /// `true` if `id` is the request currently holding `node`'s critical
    /// section — the release-path validity check.
    pub(crate) fn is_current(&self, id: RequestId, node: NodeId) -> bool {
        let inner = self.lock();
        inner.current[node.zero_based() as usize] == Some(id.0)
    }

    /// `true` if the request currently holding `node`'s critical section
    /// was opened auto-release — the worker's immediate-exit check.
    pub(crate) fn current_is_auto(&self, node: NodeId) -> bool {
        let inner = self.lock();
        inner.current[node.zero_based() as usize]
            .is_some_and(|id| inner.slots[id as usize].auto_release)
    }

    /// The node a request was issued against.
    pub(crate) fn node_of(&self, id: RequestId) -> Option<NodeId> {
        let inner = self.lock();
        inner.slots.get(id.0 as usize).map(|slot| slot.node)
    }

    /// Crash of `node`: every activated-but-ungranted request is
    /// abandoned (returns the count), and a granted request is completed
    /// — its critical section was served, however abruptly it ended.
    pub(crate) fn crash_node(&self, node: NodeId) -> u64 {
        let mut inner = self.lock();
        let idx = node.zero_based() as usize;
        let mut abandoned = 0;
        while let Some(id) = inner.pending[idx].pop_front() {
            inner.slots[id as usize].status = RequestStatus::Abandoned;
            inner.notify(id);
            abandoned += 1;
        }
        if let Some(id) = inner.current[idx].take() {
            inner.slots[id as usize].status = RequestStatus::Completed;
            inner.notify(id);
        }
        abandoned
    }

    /// Shutdown: force every non-terminal request terminal — `Pending`
    /// becomes `Abandoned` (returns how many), `Granted` becomes
    /// `Completed`. After this, `injected == completed + abandoned`
    /// holds unconditionally.
    pub(crate) fn finalize(&self) -> u64 {
        let mut inner = self.lock();
        let mut newly_abandoned = 0;
        let mut newly_terminal = Vec::new();
        for (id, slot) in inner.slots.iter_mut().enumerate() {
            match slot.status {
                RequestStatus::Pending => {
                    slot.status = RequestStatus::Abandoned;
                    newly_abandoned += 1;
                    newly_terminal.push(id as u64);
                }
                RequestStatus::Granted => {
                    slot.status = RequestStatus::Completed;
                    newly_terminal.push(id as u64);
                }
                _ => {}
            }
        }
        for id in newly_terminal {
            inner.notify(id);
        }
        for queue in &mut inner.pending {
            queue.clear();
        }
        for current in &mut inner.current {
            *current = None;
        }
        newly_abandoned
    }

    /// One request's status.
    pub(crate) fn status(&self, id: RequestId) -> Option<RequestStatus> {
        let inner = self.lock();
        inner.slots.get(id.0 as usize).map(|slot| slot.status)
    }

    /// `true` if no request is pending or granted.
    pub(crate) fn all_terminal(&self) -> bool {
        let inner = self.lock();
        inner.slots.iter().all(|slot| slot.status.is_terminal())
    }

    /// Terminal counts: `(completed, abandoned)`.
    pub(crate) fn terminal_counts(&self) -> (u64, u64) {
        let inner = self.lock();
        let mut completed = 0;
        let mut abandoned = 0;
        for slot in &inner.slots {
            match slot.status {
                RequestStatus::Completed => completed += 1,
                RequestStatus::Abandoned => abandoned += 1,
                _ => {}
            }
        }
        (completed, abandoned)
    }

    /// Per-bucket request accounting for a partition of the node space
    /// into contiguous ranges: `offsets[k]` is bucket `k`'s first
    /// zero-based node index, buckets run to the next offset (the last to
    /// infinity). Returns `(injected, completed, abandoned)` per bucket —
    /// the liveness horizon's starvation equation, one namespace at a
    /// time.
    pub(crate) fn counts_by_bucket(&self, offsets: &[u32]) -> Vec<(u64, u64, u64)> {
        let inner = self.lock();
        let mut counts = vec![(0u64, 0u64, 0u64); offsets.len()];
        for slot in &inner.slots {
            let idx = slot.node.zero_based();
            let bucket = offsets.partition_point(|&off| off <= idx).saturating_sub(1);
            let entry = &mut counts[bucket];
            entry.0 += 1;
            match slot.status {
                RequestStatus::Completed => entry.1 += 1,
                RequestStatus::Abandoned => entry.2 += 1,
                _ => {}
            }
        }
        counts
    }

    /// Requests opened so far.
    pub(crate) fn opened(&self) -> u64 {
        self.lock().slots.len() as u64
    }

    /// Snapshot of the latency summary.
    pub(crate) fn latency_summary(&self) -> LatencySummary {
        self.lock().histogram.summary()
    }

    /// Clones the full histogram (for merging across runs in harnesses).
    pub(crate) fn histogram(&self) -> LatencyHistogram {
        self.lock().histogram.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SessionTable {
        SessionTable::new(4)
    }

    fn open(t: &SessionTable, node: u32) -> RequestId {
        t.open(NodeId::new(node), Instant::now(), false, None)
    }

    #[test]
    fn lifecycle_pending_granted_completed() {
        let t = table();
        let now = Instant::now();
        let id = open(&t, 2);
        assert_eq!(t.status(id), Some(RequestStatus::Pending));
        t.activate(id);
        let (granted, _latency, auto) = t.grant(NodeId::new(2), now).expect("queued request");
        assert_eq!(granted, id);
        assert!(!auto);
        assert_eq!(t.status(id), Some(RequestStatus::Granted));
        assert!(t.is_current(id, NodeId::new(2)));
        assert!(!t.current_is_auto(NodeId::new(2)));
        assert_eq!(t.complete_current(NodeId::new(2)), Some(id));
        assert_eq!(t.status(id), Some(RequestStatus::Completed));
        assert!(t.all_terminal());
    }

    #[test]
    fn grant_order_is_fifo_per_node() {
        let t = table();
        let now = Instant::now();
        let a = open(&t, 1);
        let b = open(&t, 1);
        t.activate(a);
        t.activate(b);
        assert_eq!(t.grant(NodeId::new(1), now).unwrap().0, a);
        t.complete_current(NodeId::new(1));
        assert_eq!(t.grant(NodeId::new(1), now).unwrap().0, b);
    }

    #[test]
    fn crash_abandons_pending_and_completes_current() {
        let t = table();
        let now = Instant::now();
        let served = open(&t, 3);
        let starved = open(&t, 3);
        t.activate(served);
        t.activate(starved);
        t.grant(NodeId::new(3), now).unwrap();
        assert_eq!(t.crash_node(NodeId::new(3)), 1);
        assert_eq!(t.status(served), Some(RequestStatus::Completed));
        assert_eq!(t.status(starved), Some(RequestStatus::Abandoned));
        assert_eq!(t.terminal_counts(), (1, 1));
    }

    #[test]
    fn finalize_terminates_everything() {
        let t = table();
        let now = Instant::now();
        let pending = open(&t, 1);
        let granted = open(&t, 2);
        t.activate(granted);
        t.grant(NodeId::new(2), now).unwrap();
        assert_eq!(t.finalize(), 1);
        assert_eq!(t.status(pending), Some(RequestStatus::Abandoned));
        assert_eq!(t.status(granted), Some(RequestStatus::Completed));
        assert!(t.all_terminal());
        assert_eq!(t.opened(), 2);
    }

    #[test]
    fn grant_without_session_request_is_none() {
        let t = table();
        assert!(t.grant(NodeId::new(1), Instant::now()).is_none());
        assert!(t.complete_current(NodeId::new(1)).is_none());
    }

    #[test]
    fn auto_release_flag_travels_through_grant() {
        let t = table();
        let id = t.open(NodeId::new(1), Instant::now(), true, None);
        t.activate(id);
        let (_, _, auto) = t.grant(NodeId::new(1), Instant::now()).unwrap();
        assert!(auto);
        assert!(t.current_is_auto(NodeId::new(1)));
    }

    #[test]
    fn watcher_sees_every_terminal_transition_once() {
        let t = table();
        let (w, rx) = t.register_watcher();
        let completed = t.open(NodeId::new(1), Instant::now(), false, Some(w));
        let crashed = t.open(NodeId::new(2), Instant::now(), false, Some(w));
        let finalized = t.open(NodeId::new(3), Instant::now(), false, Some(w));
        let unwatched = open(&t, 4);
        t.activate(completed);
        t.grant(NodeId::new(1), Instant::now()).unwrap();
        t.complete_current(NodeId::new(1));
        t.activate(crashed);
        t.crash_node(NodeId::new(2));
        t.finalize();
        let mut got: Vec<Completion> = Vec::new();
        while let Ok(completion) = rx.try_recv() {
            got.push(completion);
        }
        got.sort_by_key(|(id, _)| *id);
        assert_eq!(
            got,
            vec![
                (completed, RequestStatus::Completed),
                (crashed, RequestStatus::Abandoned),
                (finalized, RequestStatus::Abandoned),
            ]
        );
        let _ = unwatched;
    }

    #[test]
    fn dropped_watcher_is_pruned_on_first_failed_send() {
        // Regression: `register_watcher` pushed senders that were never
        // pruned — a dropped `Watcher` left a dead sender that was
        // re-sent (its error silently ignored) on every terminal
        // transition forever. The first failed send must retire it.
        let t = table();
        let (w, rx) = t.register_watcher();
        let (live_w, live_rx) = t.register_watcher();
        assert_eq!(t.lock().live_watchers(), 2);
        let first = t.open(NodeId::new(1), Instant::now(), false, Some(w));
        drop(rx);
        // The client left; the first terminal transition hits the dead
        // channel and prunes the sender.
        assert!(t.abandon(first));
        assert_eq!(t.lock().live_watchers(), 1);
        assert!(t.lock().watchers[w as usize].is_none());
        // Churn: hundreds of further terminal transitions against the
        // dead watcher id stay pruned (no resurrection, no panic), and a
        // live watcher keeps its identity and its notifications.
        for i in 0..300 {
            let id = t.open(NodeId::new(1 + (i % 4)), Instant::now(), false, Some(w));
            t.abandon(id);
        }
        assert_eq!(t.lock().live_watchers(), 1);
        let watched = t.open(NodeId::new(2), Instant::now(), false, Some(live_w));
        t.abandon(watched);
        assert_eq!(live_rx.try_recv().ok(), Some((watched, RequestStatus::Abandoned)));
    }

    #[test]
    fn poisoned_table_still_answers_status() {
        // Regression: `lock()` used `expect("session table poisoned")`,
        // so one panicking worker cascaded into panics in every client
        // thread. The guard is recovered via `PoisonError::into_inner`;
        // the table's invariants are per-slot and re-checked by the
        // oracles, so readers keep working.
        let t = std::sync::Arc::new(table());
        let id = open(&t, 3);
        let poisoner = std::sync::Arc::clone(&t);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("worker dies holding the session lock");
        })
        .join();
        assert!(t.inner.lock().is_err(), "the mutex must actually be poisoned");
        assert_eq!(t.status(id), Some(RequestStatus::Pending));
        // Mutation through the recovered guard still works too.
        t.activate(id);
        assert!(t.grant(NodeId::new(3), Instant::now()).is_some());
        assert_eq!(t.status(id), Some(RequestStatus::Granted));
    }

    #[test]
    fn counts_by_bucket_partitions_the_node_space() {
        let t = table();
        // Buckets: nodes {1,2} and {3,4}.
        let a = open(&t, 1);
        let b = open(&t, 3);
        let c = open(&t, 4);
        t.activate(a);
        t.grant(NodeId::new(1), Instant::now()).unwrap();
        t.complete_current(NodeId::new(1));
        t.activate(b);
        t.crash_node(NodeId::new(3));
        let counts = t.counts_by_bucket(&[0, 2]);
        assert_eq!(counts, vec![(1, 1, 0), (2, 0, 1)]);
        let _ = c;
    }
}

//! Property: `Runtime::shutdown` always joins all workers and leaves no
//! request in a non-terminal state, whatever instant it is called at —
//! before anything was served, mid-grant, with messages and timers in
//! flight, or with a node crashed.

use std::time::Duration;

use oc_algo::{Config, OpenCubeNode};
use oc_runtime::{Runtime, RuntimeConfig};
use oc_sim::SimDuration;
use oc_topology::NodeId;
use proptest::prelude::*;
use rand::{rngs::StdRng, RngExt, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shutdown_joins_and_drains_at_any_point(
        (p, workers, requests, delay_us, seed) in
            (1u32..=4, 1usize..=4, 0usize..=12, 0u64..3_000, 0u64..u64::MAX)
    ) {
        let n = 1usize << p;
        let crash_first = seed % 2 == 1;
        let protocol =
            Config::new(n, SimDuration::from_ticks(40), SimDuration::from_ticks(20))
                .with_contention_slack(SimDuration::from_ticks(20_000));
        let rt = Runtime::start(
            RuntimeConfig { workers, seed, ..RuntimeConfig::default() },
            OpenCubeNode::build_all(protocol),
        );
        prop_assert!(rt.workers() <= workers.max(1));
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..requests {
            let node = NodeId::new(rng.random_range(1..=n as u32));
            let _ = rt.acquire(node);
        }
        if crash_first {
            rt.crash(NodeId::new(rng.random_range(1..=n as u32)));
        }
        std::thread::sleep(Duration::from_micros(delay_us));

        // If a worker failed to join, this call would hang the test
        // harness; returning at all is the join property.
        let report = rt.shutdown();

        // Drain property: every request is terminal, none lost.
        prop_assert_eq!(report.requests_injected, requests as u64);
        prop_assert_eq!(
            report.requests_completed + report.requests_abandoned,
            requests as u64
        );
        // Mutual exclusion must have held up to the cut, however abrupt.
        prop_assert!(report.mutual_exclusion_held());
        // The latency histogram saw exactly the completed-through-grant
        // requests (completed = granted-ever after finalization).
        prop_assert!(report.latency.count <= requests as u64);
    }
}

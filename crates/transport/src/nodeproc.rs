//! The per-process node runtime: one `OpenCubeNode` behind sockets.
//!
//! This is the third substrate the sans-io protocol runs under — after
//! the deterministic simulator and the in-process threaded runtime — and
//! it reuses the exact same seam: the state machine is advanced only by
//! [`oc_sim::drive`] / [`oc_sim::drive_recovery`], and every effect goes
//! through an [`ActionSink`] whose four methods here mean *real* things:
//!
//! * `send` — HLC-stamp the message and write a [`Frame::Peer`] to the
//!   destination's socket (dialing lazily, redialing once on a broken
//!   pipe, dropping on failure — fail-stop loss the Section 5 machinery
//!   already tolerates);
//! * `enter_cs` — flush an `EnterCs` record to the event log **before**
//!   granting the front pending session, so a SIGKILL can never produce
//!   a CS entry the post-hoc oracle replay does not see;
//! * `set_timer`/`cancel_timer` — a generation-checked wall-clock timer
//!   heap, ticks mapped by the configured tick duration.
//!
//! One thread owns the protocol; the acceptor and per-connection reader
//! threads only convert inbound frames into [`Cmd`]s on a channel. The
//! first frame of each inbound connection routes it: [`Frame::Hello`]
//! marks a peer link (subsequent frames must be `Peer`),
//! [`Frame::ClientHello`] marks a session-API client (the gateway), and
//! replies to a client go back over that same connection.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use oc_algo::{Config, Hardening, Msg, OpenCubeNode};
use oc_sim::{drive, drive_recovery, ActionSink, NodeEvent, Outbox, Protocol, SimDuration};
use oc_topology::NodeId;

use crate::frame::{read_frame, write_frame};
use crate::hlc::{Hlc, Stamp};
use crate::log::{LogRecord, LogWriter};
use crate::net::{Cluster, Stream};
use crate::wire::{self, CompletionStatus, Frame, NodeStatus};

/// Everything an `oc-node` process needs to run one protocol node.
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// This node's 1-based protocol id.
    pub id: u32,
    /// System size (power of two).
    pub n: usize,
    /// Protocol δ, in ticks.
    pub delta_ticks: u64,
    /// CS duration estimate, in ticks.
    pub cs_ticks: u64,
    /// Contention slack, in ticks.
    pub slack_ticks: u64,
    /// Run with `Hardening::Quorum`.
    pub hardened: bool,
    /// Wall-clock length of one tick (must make `delta_ticks` a true
    /// upper bound on the deployment's real message delay).
    pub tick: Duration,
    /// The cluster's endpoint map.
    pub cluster: Cluster,
    /// This node's append-only event log.
    pub log_path: PathBuf,
    /// `true` when restarting after a SIGKILL: runs `on_crash` +
    /// `drive_recovery` so the node re-joins per Section 5.
    pub recover: bool,
}

impl NodeOptions {
    fn config(&self) -> Config {
        Config::new(
            self.n,
            SimDuration::from_ticks(self.delta_ticks),
            SimDuration::from_ticks(self.cs_ticks),
        )
        .with_contention_slack(SimDuration::from_ticks(self.slack_ticks))
        .with_hardening(if self.hardened { Hardening::Quorum } else { Hardening::None })
    }
}

/// One command for the protocol thread, produced by reader threads.
enum Cmd {
    /// A peer's protocol message.
    Peer { from: u32, stamp: Stamp, msg: Msg },
    /// A client opened a lock request.
    Acquire { client: usize, req: u64, auto_release: bool },
    /// A client releases its granted request.
    Release { req: u64 },
    /// A client asks for a status snapshot.
    Status { client: usize },
    /// A client asks the process to flush and exit.
    Shutdown { client: usize },
}

/// A registered session-API client: the write half of its connection.
/// Slot goes `None` when a send fails (the gateway hung up) — same
/// pruning discipline as the runtime's watcher table.
type ClientTable = Arc<Mutex<Vec<Option<Stream>>>>;

fn send_to_client(clients: &ClientTable, client: usize, frame: &Frame) {
    let mut table = clients.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(slot) = table.get_mut(client) {
        let dead = match slot {
            Some(stream) => write_frame(stream, &wire::encode(frame)).is_err(),
            None => false,
        };
        if dead {
            *slot = None;
        }
    }
}

/// Outgoing peer links, dialed lazily by the protocol thread.
struct PeerLinks {
    cluster: Cluster,
    me: u32,
    links: Vec<Option<Stream>>,
}

impl PeerLinks {
    fn new(cluster: Cluster, me: u32) -> Self {
        let n = cluster.n;
        PeerLinks { cluster, me, links: (0..n).map(|_| None).collect() }
    }

    fn dial(&self, to: u32) -> Option<Stream> {
        let mut stream = self.cluster.endpoint(to).connect().ok()?;
        let hello = wire::encode(&Frame::Hello { node: self.me });
        write_frame(&mut stream, &hello).ok()?;
        Some(stream)
    }

    /// Sends one encoded frame, redialing once on a broken link; a
    /// second failure drops the message (fail-stop loss — the peer is
    /// down, and the protocol's timeout machinery owns that case).
    fn send(&mut self, to: u32, payload: &[u8]) {
        let slot = (to - 1) as usize;
        if self.links[slot].is_none() {
            self.links[slot] = self.dial(to);
        }
        if let Some(stream) = &mut self.links[slot] {
            if write_frame(stream, payload).is_ok() {
                return;
            }
            // The link broke — the peer died or restarted. Redial once:
            // a restarted incarnation listens at the same endpoint.
            self.links[slot] = self.dial(to);
            if let Some(fresh) = &mut self.links[slot] {
                if write_frame(fresh, payload).is_err() {
                    self.links[slot] = None;
                }
            }
        }
    }
}

/// A pending session request.
#[derive(Debug, Clone, Copy)]
struct Pending {
    client: usize,
    req: u64,
    auto_release: bool,
}

/// Generation-checked wall-clock timers (the heap may hold stale
/// entries; the generation map decides which are live — the same
/// re-arm/cancel semantics as the runtime's timer rows).
#[derive(Default)]
struct Timers {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Instant, u64, u64)>>,
    gens: HashMap<u64, u64>,
    armed: HashMap<u64, u64>,
}

impl Timers {
    fn set(&mut self, id: u64, deadline: Instant) {
        let gen = self.gens.entry(id).and_modify(|g| *g += 1).or_insert(1);
        self.armed.insert(id, *gen);
        self.heap.push(std::cmp::Reverse((deadline, id, *gen)));
    }

    fn cancel(&mut self, id: u64) {
        self.armed.remove(&id);
    }

    fn next_deadline(&self) -> Option<Instant> {
        self.heap.peek().map(|std::cmp::Reverse((at, _, _))| *at)
    }

    /// Pops every timer due at `now` whose generation is still armed.
    fn due(&mut self, now: Instant) -> Vec<u64> {
        let mut fired = Vec::new();
        while let Some(std::cmp::Reverse((at, id, gen))) = self.heap.peek().copied() {
            if at > now {
                break;
            }
            self.heap.pop();
            if self.armed.get(&id) == Some(&gen) {
                self.armed.remove(&id);
                fired.push(id);
            }
        }
        fired
    }
}

/// The [`ActionSink`] the socket substrate hands to [`drive`]: borrows
/// everything *around* the protocol state machine (which `drive` itself
/// borrows mutably).
struct SocketSink<'a> {
    me: u32,
    tick: Duration,
    hlc: &'a mut Hlc,
    log: &'a mut LogWriter,
    peers: &'a mut PeerLinks,
    clients: &'a ClientTable,
    timers: &'a mut Timers,
    pending: &'a mut VecDeque<Pending>,
    granted: &'a mut Option<Pending>,
    cs_entries: &'a mut u64,
    io_failure: &'a mut Option<io::Error>,
}

impl ActionSink<Msg> for SocketSink<'_> {
    fn send(&mut self, _from: NodeId, to: NodeId, msg: Msg) {
        let stamp = self.hlc.tick();
        let payload = wire::encode(&Frame::Peer { from: self.me, ns: 0, stamp, msg });
        self.peers.send(to.get(), &payload);
    }

    fn enter_cs(&mut self, node: NodeId, token_epoch: u64) {
        // Log first, act second: once the grant is visible to anyone,
        // the entry is already on disk for the post-hoc replay.
        let stamp = self.hlc.tick();
        let record = LogRecord::EnterCs { stamp, node: node.get(), epoch: token_epoch };
        if let Err(e) = self.log.append(&record) {
            self.io_failure.get_or_insert(e);
            return;
        }
        *self.cs_entries += 1;
        debug_assert!(self.granted.is_none(), "CS entered while a grant is outstanding");
        if let Some(front) = self.pending.pop_front() {
            *self.granted = Some(front);
            send_to_client(self.clients, front.client, &Frame::Granted { req: front.req });
        }
    }

    fn set_timer(&mut self, _node: NodeId, id: u64, delay: SimDuration) {
        let wall = self.tick.saturating_mul(u32::try_from(delay.ticks()).unwrap_or(u32::MAX));
        self.timers.set(id, Instant::now() + wall);
    }

    fn cancel_timer(&mut self, _node: NodeId, id: u64) {
        self.timers.cancel(id);
    }
}

/// The protocol thread's whole world.
struct Proc {
    opts: NodeOptions,
    node: OpenCubeNode,
    out: Outbox<Msg>,
    hlc: Hlc,
    log: LogWriter,
    peers: PeerLinks,
    clients: ClientTable,
    timers: Timers,
    pending: VecDeque<Pending>,
    granted: Option<Pending>,
    cs_entries: u64,
    recovered: bool,
}

impl Proc {
    /// Feeds one event through [`drive`] and then drains auto-release
    /// grants: while the CS is occupied by an auto-release request, exit
    /// immediately — the closed-loop fast path, mirroring the runtime's
    /// `drain_auto`.
    fn drive_event(&mut self, event: NodeEvent<Msg>) -> io::Result<()> {
        let mut failure = None;
        let mut sink = SocketSink {
            me: self.opts.id,
            tick: self.opts.tick,
            hlc: &mut self.hlc,
            log: &mut self.log,
            peers: &mut self.peers,
            clients: &self.clients,
            timers: &mut self.timers,
            pending: &mut self.pending,
            granted: &mut self.granted,
            cs_entries: &mut self.cs_entries,
            io_failure: &mut failure,
        };
        drive(&mut self.node, event, &mut self.out, &mut sink);
        if let Some(e) = failure {
            return Err(e);
        }
        self.drain_auto()
    }

    fn drain_auto(&mut self) -> io::Result<()> {
        while self.node.in_cs() && self.granted.is_some_and(|g| g.auto_release) {
            self.exit_cs()?;
        }
        Ok(())
    }

    /// The shared CS-exit path (early release and auto-release): log the
    /// exit, step the protocol (which may immediately re-enter for the
    /// next queued request, via the sink), then complete the session.
    fn exit_cs(&mut self) -> io::Result<()> {
        let Some(current) = self.granted.take() else { return Ok(()) };
        let stamp = self.hlc.tick();
        self.log.append(&LogRecord::ExitCs { stamp, node: self.opts.id })?;
        let mut failure = None;
        let mut sink = SocketSink {
            me: self.opts.id,
            tick: self.opts.tick,
            hlc: &mut self.hlc,
            log: &mut self.log,
            peers: &mut self.peers,
            clients: &self.clients,
            timers: &mut self.timers,
            pending: &mut self.pending,
            granted: &mut self.granted,
            cs_entries: &mut self.cs_entries,
            io_failure: &mut failure,
        };
        drive(&mut self.node, NodeEvent::ExitCs, &mut self.out, &mut sink);
        send_to_client(
            &self.clients,
            current.client,
            &Frame::Completion { req: current.req, status: CompletionStatus::Completed },
        );
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(())
    }

    fn status(&self) -> NodeStatus {
        NodeStatus {
            holds_token: self.node.holds_token(),
            token_epoch: self.node.token_epoch(),
            in_cs: self.node.in_cs(),
            idle: self.node.is_idle(),
            quorum_blocked: self.node.quorum_blocked(),
            cs_entries: self.cs_entries,
            pending: u32::try_from(self.pending.len() + usize::from(self.granted.is_some()))
                .unwrap_or(u32::MAX),
        }
    }
}

/// Reads frames off one inbound connection and converts them to
/// [`Cmd`]s. The first frame routes the connection (see module docs).
fn serve_connection(mut stream: Stream, clients: &ClientTable, tx: &Sender<Cmd>) {
    let Ok(Some(first)) = read_frame(&mut stream) else { return };
    match wire::decode(&first) {
        Ok(Frame::Hello { .. }) => {
            // Peer link: only Peer frames from here on. A frame that
            // fails to decode is consumed whole (the framing layer keeps
            // the stream aligned) and simply dropped — a lost message,
            // which the protocol already tolerates.
            while let Ok(Some(payload)) = read_frame(&mut stream) {
                if let Ok(Frame::Peer { from, stamp, msg, .. }) = wire::decode(&payload) {
                    if tx.send(Cmd::Peer { from, stamp, msg }).is_err() {
                        return;
                    }
                }
            }
        }
        Ok(Frame::ClientHello) => {
            let client = {
                let Ok(writer) = stream.try_clone() else { return };
                let mut table = clients.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                table.push(Some(writer));
                table.len() - 1
            };
            while let Ok(Some(payload)) = read_frame(&mut stream) {
                let cmd = match wire::decode(&payload) {
                    Ok(Frame::Acquire { req, auto_release }) => {
                        Cmd::Acquire { client, req, auto_release }
                    }
                    Ok(Frame::Release { req }) => Cmd::Release { req },
                    Ok(Frame::StatusQuery) => Cmd::Status { client },
                    Ok(Frame::Shutdown) => Cmd::Shutdown { client },
                    _ => continue,
                };
                if tx.send(cmd).is_err() {
                    return;
                }
            }
        }
        _ => (),
    }
}

/// Runs one node process to completion (a client's `Shutdown` frame).
///
/// Binds the endpoint, spawns the acceptor, optionally replays the
/// crash-recovery hooks, then loops: protocol commands interleaved with
/// due timers, exactly one thread ever touching the state machine.
///
/// # Errors
///
/// Propagates bind/accept/log I/O failures. Peer-link failures are not
/// errors (fail-stop loss); client-link failures prune the client.
pub fn run(opts: NodeOptions) -> io::Result<()> {
    let listener = opts.cluster.endpoint(opts.id).bind()?;
    let (tx, rx): (Sender<Cmd>, Receiver<Cmd>) = unbounded();
    let clients: ClientTable = Arc::new(Mutex::new(Vec::new()));

    {
        let clients = Arc::clone(&clients);
        let tx = tx.clone();
        std::thread::spawn(move || loop {
            let Ok(stream) = listener.accept() else { return };
            let clients = Arc::clone(&clients);
            let tx = tx.clone();
            std::thread::spawn(move || serve_connection(stream, &clients, &tx));
        });
    }

    let mut proc = Proc {
        node: OpenCubeNode::new(NodeId::new(opts.id), opts.config()),
        out: Outbox::new(),
        hlc: Hlc::new(opts.id),
        log: LogWriter::open(&opts.log_path)?,
        peers: PeerLinks::new(opts.cluster.clone(), opts.id),
        clients,
        timers: Timers::default(),
        pending: VecDeque::new(),
        granted: None,
        cs_entries: 0,
        recovered: opts.recover,
        opts,
    };

    if proc.recovered {
        // The SIGKILLed incarnation's volatile state is already gone with
        // its process; on_crash re-initializes the fresh state machine to
        // the paper's post-crash state, then the recovery protocol
        // re-joins the system.
        proc.node.on_crash();
        let stamp = proc.hlc.tick();
        proc.log.append(&LogRecord::Recover { stamp, node: proc.opts.id })?;
        let mut failure = None;
        let mut sink = SocketSink {
            me: proc.opts.id,
            tick: proc.opts.tick,
            hlc: &mut proc.hlc,
            log: &mut proc.log,
            peers: &mut proc.peers,
            clients: &proc.clients,
            timers: &mut proc.timers,
            pending: &mut proc.pending,
            granted: &mut proc.granted,
            cs_entries: &mut proc.cs_entries,
            io_failure: &mut failure,
        };
        drive_recovery(&mut proc.node, &mut proc.out, &mut sink);
        if let Some(e) = failure {
            return Err(e);
        }
    }

    loop {
        let cmd = match proc.timers.next_deadline() {
            Some(deadline) => {
                let now = Instant::now();
                if deadline <= now {
                    for id in proc.timers.due(now) {
                        proc.drive_event(NodeEvent::Timer(id))?;
                    }
                    continue;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(cmd) => cmd,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return Ok(()),
                }
            }
            None => match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => return Ok(()),
            },
        };
        match cmd {
            Cmd::Peer { from, stamp, msg } => {
                proc.hlc.observe(stamp);
                proc.drive_event(NodeEvent::Deliver { from: NodeId::new(from), msg })?;
            }
            Cmd::Acquire { client, req, auto_release } => {
                proc.pending.push_back(Pending { client, req, auto_release });
                proc.drive_event(NodeEvent::RequestCs)?;
            }
            Cmd::Release { req } => {
                if proc.granted.is_some_and(|g| g.req == req) && proc.node.in_cs() {
                    proc.exit_cs()?;
                    proc.drain_auto()?;
                }
            }
            Cmd::Status { client } => {
                send_to_client(&proc.clients, client, &Frame::Status(proc.status()));
            }
            Cmd::Shutdown { client } => {
                // Still-pending requests are abandoned (the service is
                // going away), mirroring the runtime's shutdown
                // finalization; a granted CS completed its entry already.
                while let Some(p) = proc.pending.pop_front() {
                    send_to_client(
                        &proc.clients,
                        p.client,
                        &Frame::Completion { req: p.req, status: CompletionStatus::Abandoned },
                    );
                }
                send_to_client(&proc.clients, client, &Frame::Status(proc.status()));
                return Ok(());
            }
        }
    }
}

/// Parses `oc-node`'s command line into [`NodeOptions`] — kept here so
/// the binary stays a thin shim and the parsing is unit-testable.
///
/// Recognized flags (all `--flag value` pairs except `--recover` and
/// `--hardened`): `--id`, `--n`, `--transport`, `--log`, `--delta`,
/// `--cs`, `--slack`, `--tick-ns`, `--recover`, `--hardened`.
///
/// # Errors
///
/// Returns a usage message naming the offending flag.
pub fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<NodeOptions, String> {
    let mut id = None;
    let mut n = None;
    let mut transport = None;
    let mut log = None;
    let mut delta_ticks = 40;
    let mut cs_ticks = 20;
    let mut slack_ticks = 20_000;
    let mut tick_ns: u64 = 50_000;
    let mut recover = false;
    let mut hardened = false;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--id" => id = Some(value("--id")?.parse::<u32>().map_err(|e| e.to_string())?),
            "--n" => n = Some(value("--n")?.parse::<usize>().map_err(|e| e.to_string())?),
            "--transport" => transport = Some(value("--transport")?),
            "--log" => log = Some(PathBuf::from(value("--log")?)),
            "--delta" => {
                delta_ticks =
                    value("--delta")?.parse().map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--cs" => {
                cs_ticks =
                    value("--cs")?.parse().map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--slack" => {
                slack_ticks =
                    value("--slack")?.parse().map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--tick-ns" => {
                tick_ns = value("--tick-ns")?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--recover" => recover = true,
            "--hardened" => hardened = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let id = id.ok_or("--id is required")?;
    let n = n.ok_or("--n is required")?;
    let spec = transport.ok_or("--transport is required")?;
    let log_path = log.ok_or("--log is required")?;
    Ok(NodeOptions {
        id,
        n,
        delta_ticks,
        cs_ticks,
        slack_ticks,
        hardened,
        tick: Duration::from_nanos(tick_ns),
        cluster: Cluster::parse(&spec, n)?,
        log_path,
        recover,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_into_options() {
        let args = [
            "--id",
            "3",
            "--n",
            "16",
            "--transport",
            "uds:/tmp/x",
            "--log",
            "/tmp/x/3.log",
            "--delta",
            "32",
            "--cs",
            "10",
            "--slack",
            "1000",
            "--tick-ns",
            "25000",
            "--recover",
            "--hardened",
        ];
        let opts = parse_args(args.iter().map(|s| (*s).to_owned())).unwrap();
        assert_eq!((opts.id, opts.n), (3, 16));
        assert_eq!(opts.cluster.spec(), "uds:/tmp/x");
        assert_eq!(opts.delta_ticks, 32);
        assert_eq!(opts.tick, Duration::from_micros(25));
        assert!(opts.recover && opts.hardened);
        assert!(opts.config().hardened());

        assert!(parse_args(["--id"].iter().map(|s| (*s).to_owned())).is_err());
        assert!(parse_args(["--wat"].iter().map(|s| (*s).to_owned())).is_err());
        assert!(parse_args(std::iter::empty()).is_err());
    }

    #[test]
    fn timers_respect_generations() {
        let mut timers = Timers::default();
        let now = Instant::now();
        timers.set(7, now);
        timers.set(8, now);
        timers.cancel(8);
        timers.set(9, now + Duration::from_secs(60));
        // Re-arm 7: the first entry's generation goes stale.
        timers.set(7, now);
        let fired = timers.due(Instant::now());
        assert_eq!(fired, vec![7], "cancelled and stale entries must not fire");
        assert!(timers.next_deadline().unwrap() > now + Duration::from_secs(59));
    }
}

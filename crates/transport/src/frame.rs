//! Length-prefixed framing over a byte stream.
//!
//! Every frame is `len: u32 LE` followed by exactly `len` payload bytes.
//! The length prefix is the *only* synchronization the stream has, which
//! is exactly the property the codec robustness tests pin: a frame whose
//! payload fails to decode (garbage, truncated message, unknown tag) is
//! consumed whole — the reader stays aligned on the next length prefix
//! and the following frame parses normally. No payload error can desync
//! the stream; only a short read (peer died mid-frame) ends it.

use std::io::{self, Read, Write};

/// Upper bound on a frame's payload, far above any legitimate message
/// (the largest protocol frame is tens of bytes). A length prefix beyond
/// this is a corrupt or hostile stream and is rejected before any
/// allocation of that size happens.
pub const MAX_FRAME: usize = 1 << 20;

/// Writes one frame: length prefix plus payload, then flushes.
///
/// # Errors
///
/// Propagates the underlying stream's I/O errors; rejects payloads over
/// [`MAX_FRAME`] with `InvalidInput` (nothing is written in that case).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds MAX_FRAME"));
    }
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed between frames).
///
/// # Errors
///
/// `UnexpectedEof` if the stream dies mid-frame, `InvalidData` for a
/// length prefix over [`MAX_FRAME`], and any underlying I/O error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF before the first length byte is a graceful close; an
    // EOF after it is a torn frame.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a length prefix",
                ));
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length exceeds MAX_FRAME"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_in_sequence() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0u8; 300]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap().unwrap().len(), 300);
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_at_boundary_is_none_mid_frame_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"whole").unwrap();
        // Cut inside the second frame's payload.
        write_frame(&mut buf, b"torn!").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = Cursor::new(buf);
        assert!(read_frame(&mut r).unwrap().is_some());
        assert_eq!(read_frame(&mut r).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
        // Cut inside a length prefix.
        let mut r = Cursor::new(vec![7u8, 0]);
        assert_eq!(read_frame(&mut r).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 16]);
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap_err().kind(), io::ErrorKind::InvalidData);
        let mut sink = Vec::new();
        let huge = vec![0u8; MAX_FRAME + 1];
        assert_eq!(write_frame(&mut sink, &huge).unwrap_err().kind(), io::ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "a rejected frame must not be partially written");
    }
}

//! The control-plane wire protocol spoken inside a frame payload.
//!
//! Three conversations share the framing layer:
//!
//! * **peer↔peer** — [`Frame::Hello`] identifies the dialer, then
//!   [`Frame::Peer`] carries protocol messages: the sender's id, the lock
//!   namespace, the sender's HLC stamp, and the [`Msg`] in the exact
//!   byte-for-byte `oc_algo::codec` encoding (legacy 0x01/0x02 tags and
//!   the hardened 0x08–0x0B mint tags included) — the transport adds an
//!   envelope, it never re-encodes the protocol surface;
//! * **gateway→node** — [`Frame::ClientHello`], then the session API:
//!   [`Frame::Acquire`] / [`Frame::Release`] with request ids, answered
//!   by [`Frame::Granted`] and terminal [`Frame::Completion`]s — the
//!   socket twin of `oc_runtime::Runtime::acquire_watched` and its
//!   watcher completions;
//! * **orchestrator control** — [`Frame::StatusQuery`] /
//!   [`Frame::Status`] for settle-polling and the terminal token census,
//!   [`Frame::Shutdown`] for a graceful stop.
//!
//! Layout: `tag: u8`, then fields in order, integers little-endian —
//! the same conventions as `oc_algo::codec`, and the same error posture:
//! decoding is total (no panic on any input) and trailing bytes are
//! rejected, so a frame has exactly one meaning or none.

use oc_algo::codec::{self, DecodeError};
use oc_algo::Msg;

use crate::hlc::Stamp;

/// Error decoding a control-plane frame payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the frame did.
    Truncated,
    /// Unknown frame tag.
    BadTag(u8),
    /// A field held an invalid value.
    BadField(&'static str),
    /// The embedded protocol message failed to decode.
    Msg(DecodeError),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            WireError::BadField(name) => write!(f, "invalid value for frame field {name}"),
            WireError::Msg(e) => write!(f, "embedded message: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Terminal state of a session request, on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// The critical section completed.
    Completed,
    /// Never served: the node crashed or shut down first.
    Abandoned,
}

/// A node's control-plane snapshot, answered to [`Frame::StatusQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStatus {
    /// The node currently holds the token.
    pub holds_token: bool,
    /// Epoch of the held token (0 outside hardened modes).
    pub token_epoch: u64,
    /// The node is inside its critical section.
    pub in_cs: bool,
    /// `Protocol::is_idle` — nothing pending at the node.
    pub idle: bool,
    /// `Protocol::quorum_blocked` — wants to mint but lacks a majority.
    pub quorum_blocked: bool,
    /// Critical sections completed by this incarnation.
    pub cs_entries: u64,
    /// Session requests not yet terminal at the node.
    pub pending: u32,
}

/// One control-plane frame payload. See the module docs for the roles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Peer handshake: the dialing node identifies itself.
    Hello {
        /// The dialer's 1-based protocol node id.
        node: u32,
    },
    /// Client handshake: the connection carries the session API.
    ClientHello,
    /// A protocol message between nodes.
    Peer {
        /// Sender's 1-based protocol node id.
        from: u32,
        /// Lock namespace the message belongs to (single-tenant
        /// deployments use 0; the field keeps the envelope stable when
        /// multi-tenant clusters arrive).
        ns: u32,
        /// The sender's HLC stamp at the send.
        stamp: Stamp,
        /// The protocol message, in its canonical `oc_algo::codec` bytes.
        msg: Msg,
    },
    /// Client: open a lock request.
    Acquire {
        /// Client-chosen request id, unique per connection.
        req: u64,
        /// Exit the CS immediately after entry (closed-loop clients).
        auto_release: bool,
    },
    /// Client: release a granted request early.
    Release {
        /// The request to release.
        req: u64,
    },
    /// Node→client: the request entered the critical section.
    Granted {
        /// The granted request.
        req: u64,
    },
    /// Node→client: the request reached a terminal state.
    Completion {
        /// The finished request.
        req: u64,
        /// Its terminal status.
        status: CompletionStatus,
    },
    /// Orchestrator: request a [`Frame::Status`] snapshot.
    StatusQuery,
    /// Node→orchestrator: the snapshot.
    Status(NodeStatus),
    /// Orchestrator: flush logs and exit cleanly.
    Shutdown,
}

const TAG_HELLO: u8 = 0x01;
const TAG_CLIENT_HELLO: u8 = 0x02;
const TAG_PEER: u8 = 0x03;
const TAG_ACQUIRE: u8 = 0x04;
const TAG_RELEASE: u8 = 0x05;
const TAG_GRANTED: u8 = 0x06;
const TAG_COMPLETION: u8 = 0x07;
const TAG_STATUS_QUERY: u8 = 0x08;
const TAG_STATUS: u8 = 0x09;
const TAG_SHUTDOWN: u8 = 0x0A;

/// Encodes a frame payload (the framing layer adds the length prefix).
#[must_use]
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(40);
    match frame {
        Frame::Hello { node } => {
            out.push(TAG_HELLO);
            out.extend_from_slice(&node.to_le_bytes());
        }
        Frame::ClientHello => out.push(TAG_CLIENT_HELLO),
        Frame::Peer { from, ns, stamp, msg } => {
            out.push(TAG_PEER);
            out.extend_from_slice(&from.to_le_bytes());
            out.extend_from_slice(&ns.to_le_bytes());
            stamp.encode_into(&mut out);
            // The protocol message is the final field: its canonical
            // codec bytes, verbatim (self-delimiting by construction).
            out.extend_from_slice(&codec::encode(msg));
        }
        Frame::Acquire { req, auto_release } => {
            out.push(TAG_ACQUIRE);
            out.extend_from_slice(&req.to_le_bytes());
            out.push(u8::from(*auto_release));
        }
        Frame::Release { req } => {
            out.push(TAG_RELEASE);
            out.extend_from_slice(&req.to_le_bytes());
        }
        Frame::Granted { req } => {
            out.push(TAG_GRANTED);
            out.extend_from_slice(&req.to_le_bytes());
        }
        Frame::Completion { req, status } => {
            out.push(TAG_COMPLETION);
            out.extend_from_slice(&req.to_le_bytes());
            out.push(match status {
                CompletionStatus::Completed => 0,
                CompletionStatus::Abandoned => 1,
            });
        }
        Frame::StatusQuery => out.push(TAG_STATUS_QUERY),
        Frame::Status(s) => {
            out.push(TAG_STATUS);
            out.push(u8::from(s.holds_token));
            out.extend_from_slice(&s.token_epoch.to_le_bytes());
            out.push(u8::from(s.in_cs));
            out.push(u8::from(s.idle));
            out.push(u8::from(s.quorum_blocked));
            out.extend_from_slice(&s.cs_entries.to_le_bytes());
            out.extend_from_slice(&s.pending.to_le_bytes());
        }
        Frame::Shutdown => out.push(TAG_SHUTDOWN),
    }
    out
}

/// Decodes one frame payload.
///
/// # Errors
///
/// Returns a [`WireError`] for truncated payloads, unknown tags, invalid
/// field values, embedded-message codec errors, or trailing bytes. Never
/// panics on any input.
pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut buf = bytes;
    let frame = decode_inner(&mut buf)?;
    if !buf.is_empty() {
        return Err(WireError::BadField("trailing"));
    }
    Ok(frame)
}

fn decode_inner(buf: &mut &[u8]) -> Result<Frame, WireError> {
    let tag = take_u8(buf)?;
    match tag {
        TAG_HELLO => Ok(Frame::Hello { node: take_u32(buf)? }),
        TAG_CLIENT_HELLO => Ok(Frame::ClientHello),
        TAG_PEER => {
            let from = take_u32(buf)?;
            let ns = take_u32(buf)?;
            let stamp = take_stamp(buf)?;
            let msg = codec::decode(buf).map_err(WireError::Msg)?;
            *buf = &[];
            Ok(Frame::Peer { from, ns, stamp, msg })
        }
        TAG_ACQUIRE => {
            let req = take_u64(buf)?;
            let auto_release = take_bool(buf, "auto_release")?;
            Ok(Frame::Acquire { req, auto_release })
        }
        TAG_RELEASE => Ok(Frame::Release { req: take_u64(buf)? }),
        TAG_GRANTED => Ok(Frame::Granted { req: take_u64(buf)? }),
        TAG_COMPLETION => {
            let req = take_u64(buf)?;
            let status = match take_u8(buf)? {
                0 => CompletionStatus::Completed,
                1 => CompletionStatus::Abandoned,
                _ => return Err(WireError::BadField("status")),
            };
            Ok(Frame::Completion { req, status })
        }
        TAG_STATUS_QUERY => Ok(Frame::StatusQuery),
        TAG_STATUS => Ok(Frame::Status(NodeStatus {
            holds_token: take_bool(buf, "holds_token")?,
            token_epoch: take_u64(buf)?,
            in_cs: take_bool(buf, "in_cs")?,
            idle: take_bool(buf, "idle")?,
            quorum_blocked: take_bool(buf, "quorum_blocked")?,
            cs_entries: take_u64(buf)?,
            pending: take_u32(buf)?,
        })),
        TAG_SHUTDOWN => Ok(Frame::Shutdown),
        other => Err(WireError::BadTag(other)),
    }
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    let (&first, rest) = buf.split_first().ok_or(WireError::Truncated)?;
    *buf = rest;
    Ok(first)
}

fn take_bool(buf: &mut &[u8], field: &'static str) -> Result<bool, WireError> {
    match take_u8(buf)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::BadField(field)),
    }
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    if buf.len() < 8 {
        return Err(WireError::Truncated);
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
}

fn take_stamp(buf: &mut &[u8]) -> Result<Stamp, WireError> {
    if buf.len() < Stamp::WIRE_LEN {
        return Err(WireError::Truncated);
    }
    let (head, rest) = buf.split_at(Stamp::WIRE_LEN);
    *buf = rest;
    Ok(Stamp::decode(head.try_into().expect("16 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_topology::NodeId;

    fn round_trip(frame: Frame) {
        let bytes = encode(&frame);
        assert_eq!(decode(&bytes).expect("decode"), frame);
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Frame::Hello { node: 7 });
        round_trip(Frame::ClientHello);
        round_trip(Frame::Peer {
            from: 3,
            ns: 0,
            stamp: Stamp { wall_ns: 123, logical: 4, node: 3 },
            msg: Msg::Token { lender: Some(NodeId::new(5)), epoch: 0 },
        });
        round_trip(Frame::Peer {
            from: 9,
            ns: 2,
            stamp: Stamp { wall_ns: u64::MAX, logical: u32::MAX, node: 9 },
            msg: Msg::MintAck { epoch: 11, granted: true },
        });
        round_trip(Frame::Acquire { req: 42, auto_release: true });
        round_trip(Frame::Release { req: 42 });
        round_trip(Frame::Granted { req: 1 });
        round_trip(Frame::Completion { req: 2, status: CompletionStatus::Completed });
        round_trip(Frame::Completion { req: 3, status: CompletionStatus::Abandoned });
        round_trip(Frame::StatusQuery);
        round_trip(Frame::Status(NodeStatus {
            holds_token: true,
            token_epoch: 5,
            in_cs: false,
            idle: true,
            quorum_blocked: false,
            cs_entries: 77,
            pending: 2,
        }));
        round_trip(Frame::Shutdown);
    }

    #[test]
    fn peer_envelope_embeds_the_canonical_codec_bytes() {
        // The transport must not re-encode the protocol surface: the
        // embedded bytes are exactly `oc_algo::codec::encode`'s output —
        // legacy epoch-0 tags byte for byte.
        let msg = Msg::Token { lender: None, epoch: 0 };
        let frame = Frame::Peer {
            from: 1,
            ns: 0,
            stamp: Stamp { wall_ns: 0, logical: 0, node: 1 },
            msg: msg.clone(),
        };
        let bytes = encode(&frame);
        let embedded = &bytes[1 + 4 + 4 + Stamp::WIRE_LEN..];
        assert_eq!(embedded, &codec::encode(&msg)[..]);
        assert_eq!(embedded, &[0x02, 0x00]);
    }

    #[test]
    fn garbage_is_rejected_without_panic() {
        assert_eq!(decode(&[]).unwrap_err(), WireError::Truncated);
        assert_eq!(decode(&[0xEE]).unwrap_err(), WireError::BadTag(0xEE));
        let mut bad = encode(&Frame::Acquire { req: 1, auto_release: false });
        *bad.last_mut().unwrap() = 9;
        assert_eq!(decode(&bad).unwrap_err(), WireError::BadField("auto_release"));
        let mut trailing = encode(&Frame::Shutdown);
        trailing.push(0);
        assert_eq!(decode(&trailing).unwrap_err(), WireError::BadField("trailing"));
        // A Peer frame whose embedded message is corrupt surfaces the
        // codec's structured error.
        let good = encode(&Frame::Peer {
            from: 1,
            ns: 0,
            stamp: Stamp { wall_ns: 0, logical: 0, node: 1 },
            msg: Msg::Anomaly,
        });
        let torn = &good[..good.len() - 1];
        assert_eq!(decode(torn).unwrap_err(), WireError::Msg(DecodeError::Truncated));
    }
}

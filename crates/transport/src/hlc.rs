//! Hybrid logical clock (HLC) — the merge order of per-process event
//! logs.
//!
//! Each node process stamps its log records and outgoing messages with a
//! [`Stamp`]: physical wall time (nanoseconds since the Unix epoch)
//! paired with a logical counter. Receipt of a peer's stamp advances the
//! local clock past it ([`Hlc::observe`]), so causally ordered events
//! always carry increasing stamps even when the processes' wall clocks
//! disagree by more than a message flight time. Sorting the union of all
//! logs by `(wall, logical, node)` therefore yields a linearization
//! consistent with causality — the order the unmodified `oc-sim` safety
//! oracle judges post hoc, playing the same role the runtime's monitor
//! lock plays live.
//!
//! (All processes of one deployment share a machine, so the physical
//! component is nearly synchronized anyway; the logical component exists
//! to break ties and to absorb the scheduler-induced cases where a
//! message is processed within the sender's clock granularity.)

use std::time::{SystemTime, UNIX_EPOCH};

/// One hybrid-logical-clock timestamp. Total order: `(wall_ns, logical,
/// node)` lexicographically — `node` only breaks the tie between
/// genuinely concurrent events, deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stamp {
    /// Physical component: nanoseconds since the Unix epoch, as observed
    /// (or inherited) when the stamp was issued.
    pub wall_ns: u64,
    /// Logical component: resets when the wall clock advances, increments
    /// while it stands still or runs behind an observed stamp.
    pub logical: u32,
    /// The issuing node (1-based protocol id; 0 = the orchestrator).
    pub node: u32,
}

impl Stamp {
    /// Wire encoding: 16 bytes, little-endian fields in order.
    pub const WIRE_LEN: usize = 16;

    /// Appends the wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.wall_ns.to_le_bytes());
        out.extend_from_slice(&self.logical.to_le_bytes());
        out.extend_from_slice(&self.node.to_le_bytes());
    }

    /// Decodes a stamp from exactly [`Stamp::WIRE_LEN`] bytes.
    #[must_use]
    pub fn decode(bytes: &[u8; Self::WIRE_LEN]) -> Stamp {
        Stamp {
            wall_ns: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            logical: u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
            node: u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")),
        }
    }
}

/// The clock state one process owns.
#[derive(Debug)]
pub struct Hlc {
    node: u32,
    wall_ns: u64,
    logical: u32,
}

fn physical_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

impl Hlc {
    /// A fresh clock owned by `node`.
    #[must_use]
    pub fn new(node: u32) -> Self {
        Hlc { node, wall_ns: 0, logical: 0 }
    }

    /// Issues a stamp for a local event (a send, a log record): the
    /// maximum of physical now and the last issued stamp, logical
    /// incremented on a standstill.
    pub fn tick(&mut self) -> Stamp {
        let now = physical_now();
        if now > self.wall_ns {
            self.wall_ns = now;
            self.logical = 0;
        } else {
            self.logical = self.logical.saturating_add(1);
        }
        Stamp { wall_ns: self.wall_ns, logical: self.logical, node: self.node }
    }

    /// Merges a received stamp and issues the stamp for the receipt
    /// event, guaranteed greater than both the remote stamp and every
    /// stamp this clock issued before.
    pub fn observe(&mut self, remote: Stamp) -> Stamp {
        let now = physical_now();
        let local = (self.wall_ns, self.logical);
        let theirs = (remote.wall_ns, remote.logical);
        if now > local.0.max(theirs.0) {
            self.wall_ns = now;
            self.logical = 0;
        } else if theirs > local {
            self.wall_ns = remote.wall_ns;
            self.logical = remote.logical.saturating_add(1);
        } else {
            self.logical = self.logical.saturating_add(1);
        }
        Stamp { wall_ns: self.wall_ns, logical: self.logical, node: self.node }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_stamps_are_strictly_increasing() {
        let mut clock = Hlc::new(3);
        let mut last = clock.tick();
        for _ in 0..10_000 {
            let next = clock.tick();
            assert!(next > last, "{next:?} !> {last:?}");
            last = next;
        }
    }

    #[test]
    fn observe_dominates_a_future_remote_clock() {
        let mut clock = Hlc::new(1);
        let ahead = Stamp { wall_ns: physical_now() + 5_000_000_000, logical: 7, node: 2 };
        let receipt = clock.observe(ahead);
        assert!(receipt > ahead, "receipt must be ordered after the send");
        assert_eq!(receipt.node, 1);
        // And subsequent local stamps stay ahead of the inherited wall.
        let next = clock.tick();
        assert!(next > receipt);
    }

    #[test]
    fn stamp_wire_round_trip_preserves_order() {
        let a = Stamp { wall_ns: 42, logical: 9, node: 3 };
        let b = Stamp { wall_ns: 42, logical: 9, node: 4 };
        assert!(a < b);
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        assert_eq!(buf.len(), Stamp::WIRE_LEN);
        let decoded = Stamp::decode(&buf[..].try_into().unwrap());
        assert_eq!(decoded, a);
    }
}

//! Socket plumbing: one abstraction over TCP and Unix-domain streams,
//! and the cluster's endpoint map.
//!
//! Both transports expose the identical blocking byte-stream contract
//! ([`Stream`]: `Read + Write` + `try_clone`), so everything above this
//! module — framing, the wire protocol, the node process — is transport
//! agnostic. A deployment is described by a [`Cluster`]: node `i`
//! listens at a deterministic function of the cluster spec (`base_port +
//! i - 1` for TCP, `dir/node-<i>.sock` for UDS), so processes need only
//! the spec string and their own id to find every peer.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Where one node listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:4500`.
    Tcp(String),
    /// A Unix-domain socket path.
    Uds(PathBuf),
}

impl Endpoint {
    /// Dials the endpoint.
    ///
    /// # Errors
    ///
    /// Propagates the connect error (`ConnectionRefused` while the
    /// listener is down — the caller's signal that the peer is dead).
    pub fn connect(&self) -> io::Result<Stream> {
        match self {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                // The wire is small frames wanting low latency, not
                // bandwidth; never batch them behind Nagle.
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Endpoint::Uds(path) => Ok(Stream::Uds(UnixStream::connect(path)?)),
        }
    }

    /// Binds a listener at the endpoint. For UDS a stale socket file
    /// from a SIGKILLed predecessor is removed first — rebinding after a
    /// kill is the deployment's recovery path.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(&self) -> io::Result<Listener> {
        match self {
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            Endpoint::Uds(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Uds(UnixListener::bind(path)?))
            }
        }
    }
}

/// A bound listener, either transport.
#[derive(Debug)]
pub enum Listener {
    /// TCP.
    Tcp(TcpListener),
    /// Unix-domain.
    Uds(UnixListener),
}

impl Listener {
    /// Accepts one connection.
    ///
    /// # Errors
    ///
    /// Propagates the accept error.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            Listener::Uds(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Uds(s))
            }
        }
    }
}

/// A connected byte stream, either transport.
#[derive(Debug)]
pub enum Stream {
    /// TCP.
    Tcp(TcpStream),
    /// Unix-domain.
    Uds(UnixStream),
}

impl Stream {
    /// A second handle to the same connection (reader/writer split).
    ///
    /// # Errors
    ///
    /// Propagates the underlying `try_clone` error.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            Stream::Uds(s) => Ok(Stream::Uds(s.try_clone()?)),
        }
    }

    /// Closes both directions; pending reads on clones return EOF.
    pub fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Uds(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Uds(s) => s.flush(),
        }
    }
}

/// The deployment's endpoint map: how every process, given only the
/// spec string and an id, locates every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Number of nodes.
    pub n: usize,
    kind: ClusterKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ClusterKind {
    Tcp { host: String, base_port: u16 },
    Uds { dir: PathBuf },
}

impl Cluster {
    /// A TCP cluster: node `i` listens at `host:(base_port + i - 1)`.
    #[must_use]
    pub fn tcp(host: &str, base_port: u16, n: usize) -> Self {
        Cluster { n, kind: ClusterKind::Tcp { host: host.to_owned(), base_port } }
    }

    /// A UDS cluster: node `i` listens at `dir/node-<i>.sock`.
    #[must_use]
    pub fn uds(dir: PathBuf, n: usize) -> Self {
        Cluster { n, kind: ClusterKind::Uds { dir } }
    }

    /// Parses a spec string: `tcp:<host>:<base_port>` or `uds:<dir>`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn parse(spec: &str, n: usize) -> Result<Self, String> {
        if let Some(rest) = spec.strip_prefix("tcp:") {
            let (host, port) =
                rest.rsplit_once(':').ok_or_else(|| format!("tcp spec without port: {spec}"))?;
            let base_port: u16 =
                port.parse().map_err(|_| format!("bad base port in spec: {spec}"))?;
            Ok(Cluster::tcp(host, base_port, n))
        } else if let Some(dir) = spec.strip_prefix("uds:") {
            Ok(Cluster::uds(PathBuf::from(dir), n))
        } else {
            Err(format!("spec must start with tcp: or uds:, got {spec}"))
        }
    }

    /// The spec string [`Cluster::parse`] reverses — what the
    /// orchestrator passes to each `oc-node` child.
    #[must_use]
    pub fn spec(&self) -> String {
        match &self.kind {
            ClusterKind::Tcp { host, base_port } => format!("tcp:{host}:{base_port}"),
            ClusterKind::Uds { dir } => format!("uds:{}", dir.display()),
        }
    }

    /// Node `id`'s endpoint (1-based id).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn endpoint(&self, id: u32) -> Endpoint {
        assert!(id >= 1 && id as usize <= self.n, "node {id} out of 1..={}", self.n);
        match &self.kind {
            ClusterKind::Tcp { host, base_port } => {
                Endpoint::Tcp(format!("{host}:{}", base_port + (id - 1) as u16))
            }
            ClusterKind::Uds { dir } => Endpoint::Uds(dir.join(format!("node-{id}.sock"))),
        }
    }
}

impl fmt::Display for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (n={})", self.spec(), self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_and_maps_endpoints() {
        let tcp = Cluster::parse("tcp:127.0.0.1:4500", 4).unwrap();
        assert_eq!(tcp.spec(), "tcp:127.0.0.1:4500");
        assert_eq!(tcp.endpoint(1), Endpoint::Tcp("127.0.0.1:4500".into()));
        assert_eq!(tcp.endpoint(4), Endpoint::Tcp("127.0.0.1:4503".into()));

        let uds = Cluster::parse("uds:/tmp/occ", 2).unwrap();
        assert_eq!(uds.spec(), "uds:/tmp/occ");
        assert_eq!(uds.endpoint(2), Endpoint::Uds(PathBuf::from("/tmp/occ/node-2.sock")));

        assert!(Cluster::parse("quic:nope", 2).is_err());
        assert!(Cluster::parse("tcp:nohost", 2).is_err());
    }

    #[test]
    fn uds_streams_carry_frames_both_ways() {
        let dir = std::env::temp_dir().join(format!("oc-net-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cluster = Cluster::uds(dir.clone(), 1);
        let listener = cluster.endpoint(1).bind().unwrap();
        let handle = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let got = crate::frame::read_frame(&mut conn).unwrap().unwrap();
            crate::frame::write_frame(&mut conn, &got).unwrap();
        });
        let mut client = cluster.endpoint(1).connect().unwrap();
        crate::frame::write_frame(&mut client, b"ping").unwrap();
        assert_eq!(crate::frame::read_frame(&mut client).unwrap().as_deref(), Some(&b"ping"[..]));
        handle.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tcp_streams_carry_frames_both_ways() {
        // Bind port 0 to let the OS pick, then build a cluster around it.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = probe.local_addr().unwrap().port();
        drop(probe);
        let cluster = Cluster::tcp("127.0.0.1", port, 1);
        let listener = cluster.endpoint(1).bind().unwrap();
        let handle = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let got = crate::frame::read_frame(&mut conn).unwrap().unwrap();
            crate::frame::write_frame(&mut conn, &got).unwrap();
        });
        let mut client = cluster.endpoint(1).connect().unwrap();
        crate::frame::write_frame(&mut client, b"pong").unwrap();
        assert_eq!(crate::frame::read_frame(&mut client).unwrap().as_deref(), Some(&b"pong"[..]));
        handle.join().unwrap();
    }
}

//! Per-process event logs and their post-hoc merge into the safety
//! oracle.
//!
//! A live deployment has no monitor lock to linearize critical-section
//! entries across processes, so judgement moves after the fact: every
//! node process appends [`LogRecord`]s — stamped by its [`crate::Hlc`] —
//! to a private append-only file, the orchestrator synthesizes `Crash`
//! records at each SIGKILL, and [`merge`] sorts the union by stamp into
//! one linearization consistent with causality. [`replay`] then feeds
//! that sequence to the **unmodified** `oc_sim::Oracle`, exactly as the
//! in-process runtime feeds its monitor records.
//!
//! Why this stays sound under SIGKILL:
//!
//! * an `EnterCs` record is flushed to disk *before* the grant is
//!   actioned, so every CS entry that could have happened is on disk;
//! * a missing `ExitCs` tail (the process died inside or just after the
//!   CS) is covered by the orchestrator's synthesized `Crash` record,
//!   and [`Oracle::exit_cs`] is a no-op for non-occupants, so the
//!   synthetic record can never poison a replay;
//! * a torn final record (killed mid-`write`) is detected by the length
//!   check and dropped — only the unflushed suffix of the dead process's
//!   history is lost, which the crash semantics already declare lost.

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Write};
use std::path::Path;

use oc_sim::{Oracle, OracleReport, SimTime};
use oc_topology::NodeId;

use crate::hlc::Stamp;

/// One record of a node process's event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogRecord {
    /// The node entered the critical section under `epoch`.
    EnterCs {
        /// The entering node's HLC stamp at entry.
        stamp: Stamp,
        /// The entering node (1-based).
        node: u32,
        /// Token epoch of the entry (0 outside hardened modes).
        epoch: u64,
    },
    /// The node left the critical section.
    ExitCs {
        /// The leaving node's stamp.
        stamp: Stamp,
        /// The leaving node.
        node: u32,
    },
    /// The node restarted after a crash and re-joined.
    Recover {
        /// The recovering node's stamp.
        stamp: Stamp,
        /// The recovering node.
        node: u32,
    },
    /// Orchestrator-synthesized: the node's process was killed at this
    /// moment (orchestrator clock, node 0). Replayed as an exit so a CS
    /// that died with its occupant is vacated.
    Crash {
        /// The orchestrator's stamp at the kill.
        stamp: Stamp,
        /// The killed node.
        node: u32,
    },
}

impl LogRecord {
    /// The record's HLC stamp — the merge key.
    #[must_use]
    pub fn stamp(&self) -> Stamp {
        match *self {
            LogRecord::EnterCs { stamp, .. }
            | LogRecord::ExitCs { stamp, .. }
            | LogRecord::Recover { stamp, .. }
            | LogRecord::Crash { stamp, .. } => stamp,
        }
    }
}

const REC_ENTER: u8 = 1;
const REC_EXIT: u8 = 2;
const REC_RECOVER: u8 = 3;
const REC_CRASH: u8 = 4;

/// Fixed record size on disk: tag + stamp + node + epoch (the epoch is
/// written as 0 for variants that have none, keeping records
/// fixed-width so a torn tail is detected by a simple length check).
const REC_LEN: usize = 1 + Stamp::WIRE_LEN + 4 + 8;

fn encode_record(rec: &LogRecord) -> [u8; REC_LEN] {
    let (tag, stamp, node, epoch) = match *rec {
        LogRecord::EnterCs { stamp, node, epoch } => (REC_ENTER, stamp, node, epoch),
        LogRecord::ExitCs { stamp, node } => (REC_EXIT, stamp, node, 0),
        LogRecord::Recover { stamp, node } => (REC_RECOVER, stamp, node, 0),
        LogRecord::Crash { stamp, node } => (REC_CRASH, stamp, node, 0),
    };
    let mut buf = [0u8; REC_LEN];
    buf[0] = tag;
    let mut body = Vec::with_capacity(Stamp::WIRE_LEN);
    stamp.encode_into(&mut body);
    buf[1..1 + Stamp::WIRE_LEN].copy_from_slice(&body);
    buf[17..21].copy_from_slice(&node.to_le_bytes());
    buf[21..29].copy_from_slice(&epoch.to_le_bytes());
    buf
}

fn decode_record(buf: &[u8; REC_LEN]) -> Option<LogRecord> {
    let stamp = Stamp::decode(buf[1..1 + Stamp::WIRE_LEN].try_into().expect("16 bytes"));
    let node = u32::from_le_bytes(buf[17..21].try_into().expect("4 bytes"));
    let epoch = u64::from_le_bytes(buf[21..29].try_into().expect("8 bytes"));
    match buf[0] {
        REC_ENTER => Some(LogRecord::EnterCs { stamp, node, epoch }),
        REC_EXIT => Some(LogRecord::ExitCs { stamp, node }),
        REC_RECOVER => Some(LogRecord::Recover { stamp, node }),
        REC_CRASH => Some(LogRecord::Crash { stamp, node }),
        _ => None,
    }
}

/// An append-only log writer; every append is flushed before it returns
/// so a SIGKILL can only lose records the caller has not yet acted on.
#[derive(Debug)]
pub struct LogWriter {
    file: File,
}

impl LogWriter {
    /// Opens (appending) or creates the log at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(LogWriter { file })
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates the write error.
    pub fn append(&mut self, rec: &LogRecord) -> io::Result<()> {
        self.file.write_all(&encode_record(rec))?;
        self.file.flush()
    }
}

/// Reads every complete record of a log file; a torn tail (the writer
/// was SIGKILLed mid-record) or an unknown tag ends the read at the last
/// intact record instead of failing the whole merge.
///
/// # Errors
///
/// Propagates filesystem errors (a missing file is an error — the
/// orchestrator creates each log before spawning its node).
pub fn read_log(path: &Path) -> io::Result<Vec<LogRecord>> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut records = Vec::new();
    let mut buf = [0u8; REC_LEN];
    loop {
        let mut filled = 0;
        while filled < REC_LEN {
            match reader.read(&mut buf[filled..]) {
                Ok(0) => {
                    // EOF: a partial record is a torn tail — drop it.
                    return Ok(records);
                }
                Ok(k) => filled += k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        match decode_record(&buf) {
            Some(rec) => records.push(rec),
            None => return Ok(records),
        }
    }
}

/// Merges per-process logs into one stamp-ordered linearization.
///
/// The HLC guarantees causally ordered events carry increasing stamps,
/// so this order is consistent with causality; concurrent events land in
/// the deterministic `(wall, logical, node)` tie-break order.
#[must_use]
pub fn merge(logs: Vec<Vec<LogRecord>>) -> Vec<LogRecord> {
    let mut all: Vec<LogRecord> = logs.into_iter().flatten().collect();
    all.sort_by_key(LogRecord::stamp);
    all
}

/// The verdict of a post-hoc replay.
#[derive(Debug)]
pub struct Replay {
    /// The safety oracle's report over the merged linearization.
    pub safety: OracleReport,
    /// Critical-section entries witnessed (the deployment's `served`).
    pub served: u64,
    /// Crash records replayed.
    pub crashes: u64,
    /// Recover records replayed.
    pub recoveries: u64,
}

/// Replays a merged log through a fresh, unmodified [`Oracle`].
///
/// Timestamps are re-based to the first record's wall clock so the
/// `SimTime`s in any violation report read as nanoseconds into the run.
/// `final_census` is the terminal token count the orchestrator assembled
/// from the nodes' status answers (holders among live nodes), judged by
/// the same `token_census` entry point the runtime uses at shutdown.
#[must_use]
pub fn replay(records: &[LogRecord], final_census: usize) -> Replay {
    let mut oracle = Oracle::new();
    let base = records.first().map_or(0, |r| r.stamp().wall_ns);
    let mut at = SimTime::ZERO;
    let mut served = 0u64;
    let mut crashes = 0u64;
    let mut recoveries = 0u64;
    for rec in records {
        at = SimTime::from_ticks(rec.stamp().wall_ns.saturating_sub(base));
        match *rec {
            LogRecord::EnterCs { node, epoch, .. } => {
                oracle.enter_cs(at, NodeId::new(node), epoch);
                served += 1;
            }
            LogRecord::ExitCs { node, .. } => oracle.exit_cs(NodeId::new(node)),
            LogRecord::Crash { node, .. } => {
                // Vacate whatever the dead process occupied; a no-op if
                // it was not in the CS.
                oracle.exit_cs(NodeId::new(node));
                crashes += 1;
            }
            LogRecord::Recover { .. } => recoveries += 1,
        }
    }
    oracle.token_census(at, final_census);
    Replay { safety: oracle.report().clone(), served, crashes, recoveries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(wall: u64, node: u32) -> Stamp {
        Stamp { wall_ns: wall, logical: 0, node }
    }

    #[test]
    fn write_read_round_trip_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!("oc-log-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node-1.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = LogWriter::open(&path).unwrap();
            w.append(&LogRecord::EnterCs { stamp: st(10, 1), node: 1, epoch: 2 }).unwrap();
            w.append(&LogRecord::ExitCs { stamp: st(20, 1), node: 1 }).unwrap();
            w.append(&LogRecord::Recover { stamp: st(30, 1), node: 1 }).unwrap();
        }
        // Simulate a SIGKILL mid-record: append half a record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[REC_ENTER, 1, 2, 3]).unwrap();
        }
        let records = read_log(&path).unwrap();
        assert_eq!(records.len(), 3, "torn tail must be dropped");
        assert_eq!(records[0], LogRecord::EnterCs { stamp: st(10, 1), node: 1, epoch: 2 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_orders_by_stamp_across_logs() {
        let a = vec![
            LogRecord::EnterCs { stamp: st(10, 1), node: 1, epoch: 0 },
            LogRecord::ExitCs { stamp: st(30, 1), node: 1 },
        ];
        let b = vec![
            LogRecord::EnterCs { stamp: st(40, 2), node: 2, epoch: 0 },
            LogRecord::ExitCs { stamp: st(50, 2), node: 2 },
        ];
        let merged = merge(vec![b, a]);
        assert_eq!(merged.len(), 4);
        assert!(merged.windows(2).all(|w| w[0].stamp() <= w[1].stamp()));
    }

    #[test]
    fn replay_is_clean_for_serial_history_and_flags_overlap() {
        let serial = vec![
            LogRecord::EnterCs { stamp: st(10, 1), node: 1, epoch: 0 },
            LogRecord::ExitCs { stamp: st(20, 1), node: 1 },
            LogRecord::EnterCs { stamp: st(30, 2), node: 2, epoch: 0 },
            LogRecord::ExitCs { stamp: st(40, 2), node: 2 },
        ];
        let verdict = replay(&serial, 1);
        assert!(verdict.safety.is_clean());
        assert_eq!(verdict.served, 2);

        let overlap = vec![
            LogRecord::EnterCs { stamp: st(10, 1), node: 1, epoch: 0 },
            LogRecord::EnterCs { stamp: st(15, 2), node: 2, epoch: 0 },
            LogRecord::ExitCs { stamp: st(20, 1), node: 1 },
            LogRecord::ExitCs { stamp: st(25, 2), node: 2 },
        ];
        assert!(!replay(&overlap, 1).safety.is_clean());
    }

    #[test]
    fn crash_record_vacates_a_dead_occupant() {
        let history = vec![
            LogRecord::EnterCs { stamp: st(10, 1), node: 1, epoch: 0 },
            // SIGKILL inside the CS: no ExitCs was ever flushed.
            LogRecord::Crash { stamp: st(20, 0), node: 1 },
            LogRecord::Recover { stamp: st(25, 1), node: 1 },
            LogRecord::EnterCs { stamp: st(30, 2), node: 2, epoch: 0 },
            LogRecord::ExitCs { stamp: st(40, 2), node: 2 },
        ];
        let verdict = replay(&history, 1);
        assert!(verdict.safety.is_clean(), "{:?}", verdict.safety);
        assert_eq!((verdict.served, verdict.crashes, verdict.recoveries), (2, 1, 1));
    }
}

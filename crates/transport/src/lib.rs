//! # oc-transport — the socket substrate
//!
//! Runs the open-cube protocol as *real processes over real sockets*:
//! one `OpenCubeNode` per OS process, peers wired by TCP or Unix-domain
//! streams, crash injection by SIGKILL, judged post hoc by the same
//! unmodified `oc-sim` oracles every other substrate answers to.
//!
//! Layering, bottom up:
//!
//! * [`net`] — one [`net::Stream`] abstraction over `TcpStream` and
//!   `UnixStream`, plus the [`net::Cluster`] endpoint map;
//! * [`frame`] — length-prefixed framing: the only synchronization the
//!   byte stream has, so payload garbage can never desync a link;
//! * [`wire`] — the control-plane [`wire::Frame`] codec: peer envelopes
//!   (embedding the protocol message in its canonical `oc_algo::codec`
//!   bytes, byte-for-byte), the client session API, and orchestration;
//! * [`hlc`] — hybrid logical clocks, the merge order of event logs;
//! * [`log`] — per-process append-only event logs, their stamp-ordered
//!   merge, and the replay into a fresh safety [`oc_sim::Oracle`];
//! * [`nodeproc`] — the per-process node runtime behind the exact same
//!   [`oc_sim::ActionSink`] seam the simulator and the threaded runtime
//!   drive through.
//!
//! The orchestrator that spawns node processes, drives workloads, kills
//! and heals on schedule, and merges the logs lives in `oc-bench`
//! (which owns the `oc-node` binary); this crate is the substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod hlc;
pub mod log;
pub mod net;
pub mod nodeproc;
pub mod wire;

pub use hlc::{Hlc, Stamp};
pub use log::{merge, read_log, replay, LogRecord, LogWriter, Replay};
pub use net::{Cluster, Endpoint, Listener, Stream};
pub use nodeproc::{parse_args, run, NodeOptions};
pub use wire::{CompletionStatus, Frame, NodeStatus, WireError};

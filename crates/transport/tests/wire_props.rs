//! Property tests for the transport wire surface (ISSUE 9 satellite):
//!
//! * every [`Frame`] — including `Peer` envelopes over every `Msg`
//!   variant × namespace × epoch (epoch 0 must take the legacy
//!   0x01/0x02 codec tags, nonzero epochs the 0x08–0x0B hardened tags)
//!   — round-trips byte-exactly through encode/decode;
//! * the `Peer` envelope embeds `oc_algo::codec::encode`'s bytes
//!   verbatim as its final field;
//! * truncated payloads and arbitrary garbage are rejected with a
//!   structured error, never a panic;
//! * a corrupt frame payload cannot desync the stream: the next
//!   length-prefixed frame still reads and decodes cleanly.

use std::io::Cursor;

use oc_algo::codec;
use oc_algo::{AnswerKind, EnquiryStatus, Msg};
use oc_topology::NodeId;
use oc_transport::frame::{read_frame, write_frame};
use oc_transport::wire::{decode, encode, CompletionStatus, Frame, NodeStatus};
use oc_transport::Stamp;
use proptest::prelude::*;

fn node_id() -> impl Strategy<Value = NodeId> {
    (1u32..=1 << 24).prop_map(NodeId::new)
}

/// Epochs with the legacy boundary well represented: half the draws are
/// the epoch-0 legacy encoding.
fn epoch() -> impl Strategy<Value = u64> {
    prop_oneof![Just(0u64), 1u64..=u64::MAX]
}

fn msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (node_id(), node_id(), any::<u32>(), epoch()).prop_map(
            |(claimant, source, source_seq, epoch)| Msg::Request {
                claimant,
                source,
                source_seq,
                epoch
            }
        ),
        (proptest::option::of(node_id()), epoch())
            .prop_map(|(lender, epoch)| Msg::Token { lender, epoch }),
        any::<u32>().prop_map(|source_seq| Msg::Enquiry { source_seq }),
        (
            any::<u32>(),
            prop_oneof![
                Just(EnquiryStatus::StillInCs),
                Just(EnquiryStatus::TokenReturned),
                Just(EnquiryStatus::TokenLost),
            ]
        )
            .prop_map(|(source_seq, status)| Msg::EnquiryReply { source_seq, status }),
        any::<u32>().prop_map(|d| Msg::Test { d }),
        (prop_oneof![Just(AnswerKind::Ok), Just(AnswerKind::TryLater)], any::<u32>())
            .prop_map(|(kind, d)| Msg::Answer { kind, d }),
        Just(Msg::Anomaly),
        // Mint ballots are nonzero by construction: epoch 0 has no
        // canonical encoding outside the legacy Request/Token tags.
        (1u64..=u64::MAX).prop_map(|epoch| Msg::MintRequest { epoch }),
        (1u64..=u64::MAX, any::<bool>())
            .prop_map(|(epoch, granted)| Msg::MintAck { epoch, granted }),
    ]
}

fn stamp() -> impl Strategy<Value = Stamp> {
    (any::<u64>(), any::<u32>(), any::<u32>()).prop_map(|(wall_ns, logical, node)| Stamp {
        wall_ns,
        logical,
        node,
    })
}

fn frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any::<u32>().prop_map(|node| Frame::Hello { node }),
        Just(Frame::ClientHello),
        (any::<u32>(), any::<u32>(), stamp(), msg())
            .prop_map(|(from, ns, stamp, msg)| Frame::Peer { from, ns, stamp, msg }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(req, auto_release)| Frame::Acquire { req, auto_release }),
        any::<u64>().prop_map(|req| Frame::Release { req }),
        any::<u64>().prop_map(|req| Frame::Granted { req }),
        (
            any::<u64>(),
            prop_oneof![Just(CompletionStatus::Completed), Just(CompletionStatus::Abandoned)]
        )
            .prop_map(|(req, status)| Frame::Completion { req, status }),
        Just(Frame::StatusQuery),
        (
            (any::<bool>(), any::<u64>(), any::<bool>()),
            (any::<bool>(), any::<bool>(), any::<u64>(), any::<u32>())
        )
            .prop_map(
                |(
                    (holds_token, token_epoch, in_cs),
                    (idle, quorum_blocked, cs_entries, pending),
                )| {
                    Frame::Status(NodeStatus {
                        holds_token,
                        token_epoch,
                        in_cs,
                        idle,
                        quorum_blocked,
                        cs_entries,
                        pending,
                    })
                }
            ),
        Just(Frame::Shutdown),
    ]
}

proptest! {
    /// Every frame round-trips byte-exactly.
    #[test]
    fn every_frame_round_trips(f in frame()) {
        let bytes = encode(&f);
        prop_assert_eq!(decode(&bytes).expect("well-formed frame decodes"), f);
    }

    /// Peer envelopes end in `oc_algo::codec::encode`'s bytes verbatim,
    /// with epoch 0 taking the legacy 0x01/0x02 tags on the wire.
    #[test]
    fn peer_embeds_canonical_codec_bytes(
        from in any::<u32>(),
        ns in any::<u32>(),
        st in stamp(),
        m in msg(),
    ) {
        let bytes = encode(&Frame::Peer { from, ns, stamp: st, msg: m.clone() });
        let header = 1 + 4 + 4 + Stamp::WIRE_LEN;
        let canonical = codec::encode(&m);
        prop_assert_eq!(&bytes[header..], &canonical[..]);
        match &m {
            Msg::Request { epoch: 0, .. } => prop_assert_eq!(bytes[header], 0x01),
            Msg::Token { epoch: 0, .. } => prop_assert_eq!(bytes[header], 0x02),
            Msg::Request { .. } => prop_assert_eq!(bytes[header], 0x08),
            Msg::Token { .. } => prop_assert_eq!(bytes[header], 0x09),
            Msg::MintRequest { .. } => prop_assert_eq!(bytes[header], 0x0A),
            Msg::MintAck { .. } => prop_assert_eq!(bytes[header], 0x0B),
            _ => {}
        }
    }

    /// Every strict prefix of a well-formed payload is rejected (all
    /// fields are fixed-length and required), and the error is a value,
    /// not a panic.
    #[test]
    fn truncation_is_rejected(f in frame(), cut in 1usize..64) {
        let bytes = encode(&f);
        let keep = bytes.len().saturating_sub(cut);
        prop_assert!(decode(&bytes[..keep]).is_err());
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&payload);
    }

    /// A corrupt frame payload cannot desync the stream: the framing
    /// layer still delivers the *next* frame intact, and it decodes.
    #[test]
    fn corrupt_frame_does_not_desync_the_next(
        garbage in proptest::collection::vec(any::<u8>(), 1..128),
        f in frame(),
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &garbage).expect("framing accepts any payload");
        write_frame(&mut buf, &encode(&f)).expect("framing accepts the frame");
        let mut cursor = Cursor::new(buf);
        let first = read_frame(&mut cursor).expect("framed read").expect("present");
        prop_assert_eq!(&first, &garbage); // delivered, possibly undecodable
        let second = read_frame(&mut cursor).expect("framed read").expect("present");
        prop_assert_eq!(decode(&second).expect("second frame decodes"), f);
        prop_assert!(read_frame(&mut cursor).expect("clean EOF").is_none());
    }
}

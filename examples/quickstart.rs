//! Quickstart: an 8-node open-cube system under the deterministic
//! simulator, with a full message trace.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use opencube::algo::{Config, OpenCubeNode};
use opencube::sim::{SimConfig, SimDuration, SimTime, World};
use opencube::topology::NodeId;

fn main() {
    // δ = 10 ticks of network delay; critical sections last 50 ticks.
    let config = Config::new(8, SimDuration::from_ticks(10), SimDuration::from_ticks(50));
    let mut world = World::new(
        SimConfig { record_trace: true, ..SimConfig::default() },
        OpenCubeNode::build_all(config),
    );

    // Three nodes ask for the critical section at different times.
    world.schedule_request(SimTime::from_ticks(5), NodeId::new(6));
    world.schedule_request(SimTime::from_ticks(7), NodeId::new(3));
    world.schedule_request(SimTime::from_ticks(9), NodeId::new(8));

    assert!(world.run_to_quiescence());

    println!("--- message trace ---");
    print!("{}", world.trace());

    println!("\n--- summary ---");
    println!("critical sections : {}", world.metrics().cs_entries);
    println!("messages sent     : {}", world.metrics().total_sent());
    println!(
        "service order     : {:?}",
        world.trace().cs_order().map(|n| n.get()).collect::<Vec<_>>()
    );
    println!(
        "safety            : {}",
        if world.oracle_report().is_clean() { "clean" } else { "VIOLATED" }
    );

    // The routing tree is still an open-cube — the paper's Theorem 2.1 at
    // work. Print who each node now considers its father.
    println!("\n--- final father pointers ---");
    for id in NodeId::all(world.len()) {
        match world.node(id).father() {
            Some(f) => println!("father({id}) = {f}"),
            None => println!("father({id}) = nil   <- root, holds the token: {}", {
                use opencube::sim::Protocol;
                world.node(id).holds_token()
            }),
        }
    }
}

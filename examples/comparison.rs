//! Runs the same workload over the open-cube algorithm, Raymond's,
//! Naimi–Trehel's and a centralized coordinator, printing the message
//! economics side by side (the E5 experiment at one size).
//!
//! ```text
//! cargo run --release --example comparison [n]
//! ```

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    assert!(opencube::topology::is_valid_size(n), "n must be a power of two");

    println!("comparing on n = {n} nodes (uniform, hotspot and burst workloads)\n");
    println!(
        "{:>14} {:>9} {:>10} {:>10} {:>12} {:>10} {:>11}",
        "algorithm", "seq avg", "seq worst", "conc avg", "hotspot avg", "burst avg", "post-burst"
    );
    for row in oc_bench::e5_comparison(n, 42) {
        println!(
            "{:>14} {:>9.2} {:>10} {:>10.2} {:>12.2} {:>10.2} {:>11}",
            row.algo.name(),
            row.seq_avg,
            row.seq_worst,
            row.conc_avg,
            row.hotspot_avg,
            row.burst_avg,
            row.post_burst_worst,
        );
    }

    println!();
    println!("reading guide:");
    println!("  - open-cube's worst cases stay within log2(n)+2 = {};", n.trailing_zeros() + 2);
    println!("  - naimi-trehel's post-burst worst grows with n (no structural bound);");
    println!("  - raymond is cheap under saturation but its static tree cannot adapt");
    println!("    (hotspot) and cannot survive failures;");
    println!("  - the centralized coordinator is a constant-cost single point of failure.");
}

//! The same open-cube state machine running as a sharded lock service:
//! 16 nodes over 4 worker threads, a client session API with request
//! ids and latency tracking, a crash/recovery of the token holder, and
//! the unmodified simulator oracles judging the whole run at shutdown.
//!
//! ```text
//! cargo run --release --example threaded
//! ```

use std::time::Duration;

use opencube::algo::{Config, OpenCubeNode};
use opencube::runtime::{Runtime, RuntimeConfig};
use opencube::sim::SimDuration;
use opencube::topology::NodeId;

fn main() {
    let n = 16;
    // δ = 40 ticks × 50µs/tick = 2ms ≥ the router's 1ms max delay.
    let config = Config::new(n, SimDuration::from_ticks(40), SimDuration::from_ticks(20))
        .with_contention_slack(SimDuration::from_ticks(50_000));
    let rt = Runtime::start(
        RuntimeConfig { workers: 4, ..RuntimeConfig::default() },
        OpenCubeNode::build_all(config),
    );
    println!("lock service up: {} nodes over {} workers", rt.len(), rt.workers());

    println!("phase 1: all {n} nodes acquire once, concurrently");
    let ids: Vec<_> = (1..=n as u32).map(|i| rt.acquire(NodeId::new(i))).collect();
    assert!(rt.await_cs_entries(n as u64, Duration::from_secs(60)), "phase 1 did not complete");
    println!("  -> {} critical sections served", rt.cs_entries());
    let first = rt.request_status(ids[0]);
    println!("  -> request {} is {:?}", ids[0].index(), first);

    println!("phase 2: crash node 5, wait, recover it, keep acquiring");
    rt.crash(NodeId::new(5));
    std::thread::sleep(Duration::from_millis(50));
    rt.recover(NodeId::new(5));
    for i in [2u32, 9, 12, 7] {
        let _ = rt.acquire(NodeId::new(i));
    }
    assert!(
        rt.await_cs_entries(n as u64 + 4, Duration::from_secs(120)),
        "phase 2 did not complete"
    );
    println!("  -> {} critical sections served", rt.cs_entries());

    assert!(rt.await_settled(Duration::from_secs(120)), "service did not settle");
    let report = rt.shutdown();
    println!("\n--- report ---");
    println!("critical sections : {}", report.cs_entries);
    println!(
        "requests          : {} completed, {} abandoned",
        report.requests_completed, report.requests_abandoned
    );
    println!("messages sent     : {}", report.messages_sent);
    println!("crash / recovery  : {} / {}", report.crashes, report.recoveries);
    println!("terminal census   : {} token(s)", report.terminal_token_census);
    println!(
        "grant latency     : p50 {:.1}µs  p99 {:.1}µs  p999 {:.1}µs  max {:.1}µs",
        report.latency.p50_nanos as f64 / 1_000.0,
        report.latency.p99_nanos as f64 / 1_000.0,
        report.latency.p999_nanos as f64 / 1_000.0,
        report.latency.max_nanos as f64 / 1_000.0,
    );
    println!("safety oracle     : {}", if report.safety.is_clean() { "clean" } else { "VIOLATED" });
    println!(
        "liveness oracle   : {}",
        if report.liveness.is_clean() { "clean" } else { "VIOLATED" }
    );
    assert!(report.is_clean(), "oracle violations: {report:?}");
}

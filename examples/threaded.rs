//! The same open-cube state machine running on real OS threads (one per
//! node) over crossbeam channels — genuine asynchrony instead of virtual
//! time — including a crash/recovery of the token holder.
//!
//! ```text
//! cargo run --release --example threaded
//! ```

use std::time::Duration;

use opencube::algo::{Config, OpenCubeNode};
use opencube::runtime::{Runtime, RuntimeConfig};
use opencube::sim::SimDuration;
use opencube::topology::NodeId;

fn main() {
    let n = 16;
    // δ = 40 ticks × 50µs/tick = 2ms ≥ the router's 1ms max delay.
    let config = Config::new(n, SimDuration::from_ticks(40), SimDuration::from_ticks(20))
        .with_contention_slack(SimDuration::from_ticks(50_000));
    let rt = Runtime::start(RuntimeConfig::default(), OpenCubeNode::build_all(config));

    println!("phase 1: all {n} nodes request once, concurrently");
    for i in 1..=n as u32 {
        rt.request_cs(NodeId::new(i));
    }
    assert!(rt.await_cs_entries(n as u64, Duration::from_secs(60)), "phase 1 did not complete");
    println!("  -> {} critical sections served", rt.cs_entries());

    println!("phase 2: crash node 5, wait, recover it, keep requesting");
    rt.crash(NodeId::new(5));
    std::thread::sleep(Duration::from_millis(50));
    rt.recover(NodeId::new(5));
    for i in [2u32, 9, 12, 7] {
        rt.request_cs(NodeId::new(i));
    }
    assert!(
        rt.await_cs_entries(n as u64 + 4, Duration::from_secs(120)),
        "phase 2 did not complete"
    );
    println!("  -> {} critical sections served", rt.cs_entries());

    let report = rt.shutdown();
    println!("\n--- report ---");
    println!("critical sections : {}", report.cs_entries);
    println!("messages sent     : {}", report.messages_sent);
    println!(
        "mutual exclusion  : {}",
        if report.mutual_exclusion_held { "held throughout" } else { "VIOLATED" }
    );
}

//! Reproduces the worked example of Section 3.2 (Figures 6–8): the
//! 16-open-cube where node 1 has lent the token to node 6, and nodes 10
//! and 8 request the critical section.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use opencube::algo::{Config, OpenCubeNode};
use opencube::sim::{DelayModel, Protocol, SimConfig, SimDuration, SimTime, World};
use opencube::topology::{invariant, NodeId};

fn main() {
    let delta = SimDuration::from_ticks(10);
    let cs = SimDuration::from_ticks(50);
    // The pure Section 3 algorithm (no failure machinery), constant delays
    // so the interleaving matches the paper.
    let config = Config::without_fault_tolerance(16, delta, cs);
    let mut world = World::new(
        SimConfig {
            delay: DelayModel::Constant(delta),
            cs_duration: cs,
            record_trace: true,
            ..SimConfig::default()
        },
        OpenCubeNode::build_all(config),
    );

    // Figure 6's starting point: 6 borrows the token from the root...
    world.schedule_request(SimTime::from_ticks(0), NodeId::new(6));
    // ...and while 6 sits in the critical section, 10 and 8 request.
    world.schedule_request(SimTime::from_ticks(50), NodeId::new(10));
    world.schedule_request(SimTime::from_ticks(55), NodeId::new(8));

    assert!(world.run_to_quiescence());

    println!("--- trace (compare with the paper's Section 3.2 narration) ---");
    print!("{}", world.trace());

    println!("\n--- Figure 8: final configuration ---");
    for id in NodeId::all(16) {
        let node = world.node(id);
        match node.father() {
            Some(f) => println!("father({id:>2}) = {f}"),
            None => println!(
                "father({id:>2}) = nil   (root{})",
                if node.holds_token() { ", keeps the token" } else { "" }
            ),
        }
    }

    let table = opencube::algo::father_table(&world);
    println!(
        "\nopen-cube invariant: {}",
        match invariant::verify_open_cube(&table) {
            Ok(()) => "holds".to_string(),
            Err(e) => format!("VIOLATED: {e}"),
        }
    );
    println!(
        "service order      : {:?}  (paper: 6, then 10, then 8)",
        world.trace().cs_order().map(|n| n.get()).collect::<Vec<_>>()
    );
    println!(
        "messages           : {} requests, {} tokens",
        world.metrics().sent(opencube::sim::MsgKind::Request),
        world.metrics().sent(opencube::sim::MsgKind::Token),
    );
}

//! Fault tolerance in action (Section 5): the root crashes while holding
//! the token; the survivors detect it, search for new fathers, regenerate
//! the token, and keep serving. Then the crashed node recovers and is
//! stitched back in — including the anomaly repair for a stale descendant.
//!
//! ```text
//! cargo run --example failover
//! ```

use opencube::algo::{aggregate_stats, Config, OpenCubeNode};
use opencube::sim::{Protocol, SimConfig, SimDuration, SimTime, World};
use opencube::topology::NodeId;

fn main() {
    let config = Config::new(16, SimDuration::from_ticks(10), SimDuration::from_ticks(50))
        .with_contention_slack(SimDuration::from_ticks(500));
    let mut world = World::new(
        SimConfig { record_trace: true, ..SimConfig::default() },
        OpenCubeNode::build_all(config),
    );

    println!("t=100   : node 1 (the root, holding the token) crashes");
    world.schedule_failure(SimTime::from_ticks(100), NodeId::new(1));

    println!("t=200   : nodes 10 and 12 request the critical section");
    world.schedule_request(SimTime::from_ticks(200), NodeId::new(10));
    world.schedule_request(SimTime::from_ticks(200), NodeId::new(12));

    println!("t=20000 : node 1 recovers and re-joins as a leaf");
    world.schedule_recovery(SimTime::from_ticks(20_000), NodeId::new(1));

    println!("t=30000 : node 2 requests through its stale father 1");
    world.schedule_request(SimTime::from_ticks(30_000), NodeId::new(2));

    assert!(world.run_to_quiescence());

    println!("\n--- outcome ---");
    let stats = aggregate_stats(&world);
    println!("critical sections completed : {}", world.metrics().cs_entries);
    println!("searches run                : {}", stats.searches_started);
    println!("nodes probed (test msgs)    : {}", stats.nodes_tested);
    println!("tokens regenerated          : {}", stats.tokens_regenerated);
    println!("anomaly repairs             : {}", stats.anomalies_received);
    println!("overhead messages           : {}", world.metrics().overhead_messages());
    println!(
        "safety                      : {}",
        if world.oracle_report().is_clean() { "clean" } else { "VIOLATED" }
    );

    println!("\n--- final tree (live view) ---");
    for id in NodeId::all(16) {
        let node = world.node(id);
        match node.father() {
            Some(f) => println!("father({id:>2}) = {f}"),
            None => println!(
                "father({id:>2}) = nil (root{})",
                if node.holds_token() { ", holds token" } else { "" }
            ),
        }
    }
}

//! Differential sim-vs-runtime conformance.
//!
//! The same protocol instances, the same `ArrivalSchedule`, and the same
//! `FailurePlan` run once through the deterministic simulator (`World`)
//! and once through the threaded lock service (`Runtime`). Both
//! executions must:
//!
//! * pass the safety oracle (mutual exclusion, token uniqueness) and the
//!   liveness oracle (starvation, token conservation, stuck nodes) — the
//!   *same* oracle code judges both substrates;
//! * serve every injected request (`requests_abandoned == 0` — the
//!   scenarios are built so nothing is pending at a crash);
//! * reach the same CS-entry count and the same terminal token census.
//!
//! Scenario shape: every node requests once at a gap wide enough that
//! service keeps pace with arrivals (the paper's near-sequential
//! regime), optionally followed by a crash+recovery of a victim long
//! after the workload has drained, and a final post-recovery request
//! from the victim — which exercises re-join (and, when the victim died
//! holding the resting token, lazy regeneration) on both substrates.

use std::time::Duration;

use opencube::algo::{Config, Hardening, OpenCubeNode};
use opencube::runtime::{Runtime, RuntimeConfig, RuntimeReport};
use opencube::sim::{
    check_liveness, ArrivalSchedule, DelayModel, FailurePlan, SimConfig, SimDuration, SimTime,
    World,
};
use opencube::topology::NodeId;
use rand::{rngs::StdRng, SeedableRng};

/// Protocol δ in ticks.
const DELTA: u64 = 40;
/// Critical-section length in ticks.
const CS: u64 = 50;
/// Suspicion slack in ticks (covers queueing jitter; 20 ms of wall time
/// at the runtime tick below).
const SLACK: u64 = 4_000;
/// Arrival gap in ticks — wider than a request round-trip, so service
/// keeps pace with arrivals on both substrates.
const GAP: u64 = 1_000;
/// Wall-clock length of one tick in the runtime.
const TICK: Duration = Duration::from_micros(5);

fn protocol_config(n: usize, hardening: Hardening) -> Config {
    Config::new(n, SimDuration::from_ticks(DELTA), SimDuration::from_ticks(CS))
        .with_contention_slack(SimDuration::from_ticks(SLACK))
        .with_hardening(hardening)
}

struct SimOutcome {
    cs_entries: u64,
    census: usize,
}

fn run_sim(
    n: usize,
    schedule: &ArrivalSchedule,
    plan: &FailurePlan,
    seed: u64,
    hardening: Hardening,
) -> SimOutcome {
    let mut world = World::new(
        SimConfig {
            delay: DelayModel::Uniform {
                min: SimDuration::from_ticks(1),
                max: SimDuration::from_ticks(DELTA),
            },
            cs_duration: SimDuration::from_ticks(CS),
            seed,
            max_events: 50_000_000,
            ..SimConfig::default()
        },
        OpenCubeNode::build_all(protocol_config(n, hardening)),
    );
    world.schedule_workload(schedule);
    world.schedule_failures(plan);
    let drained = world.run_to_quiescence();
    assert!(drained, "sim did not quiesce at n={n}");
    assert!(
        world.oracle_report().is_clean(),
        "sim safety violations at n={n}: {:?}",
        world.oracle_report().violations()
    );
    let liveness = check_liveness(&world, drained);
    assert!(liveness.is_clean(), "sim liveness violations at n={n}: {:?}", liveness.violations());
    assert_eq!(world.metrics().requests_abandoned, 0, "conformance scenarios abandon nothing");
    SimOutcome { cs_entries: world.metrics().cs_entries, census: world.live_token_census() }
}

fn runtime_config(batch: usize, routers: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers: 8,
        tick: TICK,
        // δ = 40 ticks × 5µs = 200µs ≥ the router's max delay.
        max_network_delay: Duration::from_micros(100),
        cs_duration: TICK * CS as u32,
        seed: 7,
        batch,
        routers,
        ..RuntimeConfig::default()
    }
}

fn run_runtime(
    n: usize,
    schedule: &ArrivalSchedule,
    plan: &FailurePlan,
    hardening: Hardening,
) -> RuntimeReport {
    run_runtime_cfg(n, schedule, plan, hardening, 0, 0)
}

fn run_runtime_cfg(
    n: usize,
    schedule: &ArrivalSchedule,
    plan: &FailurePlan,
    hardening: Hardening,
    batch: usize,
    routers: usize,
) -> RuntimeReport {
    let rt = Runtime::start(
        runtime_config(batch, routers),
        OpenCubeNode::build_all(protocol_config(n, hardening)),
    );
    let ids = rt.schedule_workload(schedule);
    assert_eq!(ids.len(), schedule.len());
    rt.schedule_failures(plan);
    assert!(
        rt.await_settled(Duration::from_secs(120)),
        "runtime did not settle at n={n} (cs_entries={})",
        rt.cs_entries()
    );
    rt.shutdown()
}

/// Runs one differential cell and cross-checks the two substrates.
fn conformance(n: usize, with_crash: bool) {
    conformance_under(n, with_crash, Hardening::None);
}

/// The same differential cell with an explicit hardening mode: both
/// substrates run the quorum-hardened protocol, so the crash cell's
/// regeneration goes through a mint ballot (all peers are reachable, so
/// the quorum assembles) and the verdicts must still agree.
fn conformance_under(n: usize, with_crash: bool, hardening: Hardening) {
    let mut rng = StdRng::seed_from_u64(n as u64 * 31 + u64::from(with_crash));
    let mut schedule = ArrivalSchedule::every_node_once(&mut rng, n, SimDuration::from_ticks(GAP));
    let mut plan = FailurePlan::none();
    if with_crash {
        // Crash a victim long after the workload drained (nothing can be
        // pending on it), recover it, then have it request once more —
        // the re-join/regeneration path, exercised identically on both
        // substrates.
        let victim = NodeId::new((n / 2) as u32);
        let crash_at = n as u64 * GAP + 20_000;
        plan = plan.crash_and_recover(
            victim,
            SimTime::from_ticks(crash_at),
            SimTime::from_ticks(crash_at + 5_000),
        );
        schedule = schedule.then(SimTime::from_ticks(crash_at + 30_000), victim);
    }

    let sim = run_sim(n, &schedule, &plan, 42, hardening);
    let expected_entries = schedule.len() as u64;
    assert_eq!(sim.cs_entries, expected_entries, "sim served everything exactly once");

    let report = run_runtime(n, &schedule, &plan, hardening);
    assert!(
        report.is_clean(),
        "runtime oracle violations at n={n} crash={with_crash}: safety={:?} liveness={:?}",
        report.safety.violations(),
        report.liveness.violations()
    );
    assert!(report.drained);
    assert_eq!(report.requests_abandoned, 0, "n={n} crash={with_crash}");
    assert_eq!(report.cs_entries, sim.cs_entries, "n={n} crash={with_crash}");
    assert_eq!(report.requests_completed, sim.cs_entries, "n={n} crash={with_crash}");
    assert_eq!(report.terminal_token_census, sim.census, "n={n} crash={with_crash}");
    if with_crash {
        assert_eq!(report.crashes, 1);
        assert_eq!(report.recoveries, 1);
    }
    // Latency accounting is complete: one sample per served request.
    assert_eq!(report.latency.count, expected_entries);
    assert!(report.latency.p50_nanos <= report.latency.p99_nanos);
    assert!(report.latency.p99_nanos <= report.latency.p999_nanos);
    assert!(report.latency.p999_nanos <= report.latency.max_nanos);
}

#[test]
fn conformance_n16() {
    conformance(16, false);
    conformance(16, true);
}

#[test]
fn conformance_n64() {
    conformance(64, false);
    conformance(64, true);
}

#[test]
fn conformance_n256() {
    conformance(256, false);
    conformance(256, true);
}

#[test]
fn hardened_conformance_n16() {
    conformance_under(16, false, Hardening::Quorum);
    conformance_under(16, true, Hardening::Quorum);
}

#[test]
fn hardened_conformance_n64() {
    conformance_under(64, false, Hardening::Quorum);
    conformance_under(64, true, Hardening::Quorum);
}

/// The batched hot path is a performance refactor, not a semantic one:
/// the same scheduled workload must produce the same entry count, the
/// same terminal census, and clean verdicts whether workers drain one
/// command at a time (`batch: 1`, single router) or in bursts through
/// sharded routers.
#[test]
fn batched_and_unbatched_runtimes_agree() {
    let n = 16;
    let mut rng = StdRng::seed_from_u64(1601);
    let schedule = ArrivalSchedule::every_node_once(&mut rng, n, SimDuration::from_ticks(GAP));
    let plan = FailurePlan::none();
    let sim = run_sim(n, &schedule, &plan, 42, Hardening::None);

    for (batch, routers) in [(1, 1), (0, 0), (256, 4)] {
        let report = run_runtime_cfg(n, &schedule, &plan, Hardening::None, batch, routers);
        assert!(
            report.is_clean(),
            "batch={batch} routers={routers}: safety={:?} liveness={:?}",
            report.safety.violations(),
            report.liveness.violations()
        );
        assert!(report.drained, "batch={batch} routers={routers}");
        assert_eq!(report.cs_entries, sim.cs_entries, "batch={batch} routers={routers}");
        assert_eq!(report.requests_abandoned, 0, "batch={batch} routers={routers}");
        assert_eq!(report.terminal_token_census, sim.census, "batch={batch} routers={routers}");
    }
}

/// Multi-tenant differential: `K` identical cubes behind one worker
/// pool must each serve exactly what one simulated cube serves, judged
/// namespace-by-namespace by the unmodified oracles. Requests fan out
/// round-robin across namespaces (concurrent between tenants, ordered
/// within each), so the shared routers and workers interleave tenant
/// traffic while every per-namespace verdict stays clean.
#[test]
fn multi_namespace_runtime_matches_k_independent_sims() {
    let n = 8;
    let k = 6;
    let mut rng = StdRng::seed_from_u64(806);
    let schedule = ArrivalSchedule::every_node_once(&mut rng, n, SimDuration::from_ticks(GAP));
    let sim = run_sim(n, &schedule, &FailurePlan::none(), 42, Hardening::None);
    assert_eq!(sim.census, 1);

    let rt = Runtime::start_multi(
        runtime_config(0, 2),
        (0..k).map(|_| OpenCubeNode::build_all(protocol_config(n, Hardening::None))).collect(),
    );
    assert_eq!(rt.namespaces(), k);
    let watcher = rt.watcher();
    // One wave per node: a request in every namespace, then all K
    // completions, so tenants contend for workers at every step.
    for node in 1..=n as u32 {
        for ns in 0..k {
            let _ = rt.acquire_watched(ns, NodeId::new(node), &watcher, false);
        }
        for _ in 0..k {
            assert!(
                watcher.recv_timeout(Duration::from_secs(30)).is_some(),
                "wave for node {node} did not complete"
            );
        }
    }
    for ns in 0..k {
        assert_eq!(rt.cs_entries_in(ns), n as u64, "namespace {ns} served its cube");
    }
    assert!(rt.await_settled(Duration::from_secs(60)));
    let report = rt.shutdown();
    assert!(
        report.is_clean(),
        "safety={:?} liveness={:?}",
        report.safety.violations(),
        report.liveness.violations()
    );
    assert!(report.drained);
    assert_eq!(report.namespaces, k);
    assert_eq!(report.cs_entries, sim.cs_entries * k as u64);
    assert_eq!(report.requests_completed, report.cs_entries);
    assert_eq!(report.requests_abandoned, 0);
    // One live token per tenant — K times the single-cube census.
    assert_eq!(report.terminal_token_census, sim.census * k);
}

/// Closed-loop saturation conformance: many small tenants driven flat
/// out through the auto-release hot path must stay oracle-clean with
/// fully conserved request accounting, batched or not.
#[test]
fn saturated_tenants_stay_clean_batched_and_unbatched() {
    let n = 4;
    let k = 16;
    for (batch, routers) in [(0, 0), (1, 1)] {
        let rt = Runtime::start_multi(
            runtime_config(batch, routers),
            (0..k).map(|_| OpenCubeNode::build_all(protocol_config(n, Hardening::None))).collect(),
        );
        let deadline = std::time::Instant::now() + Duration::from_millis(300);
        std::thread::scope(|scope| {
            for client in 0..2usize {
                let rt = &rt;
                scope.spawn(move || {
                    let watcher = rt.watcher();
                    let mut outstanding = 0usize;
                    for ns in (client..k).step_by(2) {
                        let _ = rt.acquire_watched(ns, NodeId::new(1), &watcher, true);
                        outstanding += 1;
                    }
                    while outstanding > 0 {
                        let Some((id, _)) = watcher.recv_timeout(Duration::from_secs(30)) else {
                            panic!("saturation client wedged (batch={batch})");
                        };
                        outstanding -= 1;
                        if std::time::Instant::now() < deadline {
                            let ns = rt.namespace_of(id).expect("completion has a namespace");
                            let _ = rt.acquire_watched(ns, NodeId::new(1), &watcher, true);
                            outstanding += 1;
                        }
                    }
                });
            }
        });
        assert!(rt.await_settled(Duration::from_secs(60)), "batch={batch}");
        let report = rt.shutdown();
        assert!(
            report.is_clean(),
            "batch={batch} routers={routers}: safety={:?} liveness={:?}",
            report.safety.violations(),
            report.liveness.violations()
        );
        assert!(report.drained, "batch={batch}");
        assert_eq!(report.namespaces, k);
        assert_eq!(
            report.requests_injected,
            report.requests_completed + report.requests_abandoned,
            "batch={batch}: request accounting must conserve"
        );
        assert_eq!(report.requests_abandoned, 0, "batch={batch}: nothing crashes here");
        assert_eq!(report.cs_entries, report.requests_completed, "batch={batch}");
        assert!(
            report.cs_entries >= k as u64,
            "batch={batch}: every tenant serves at least its seed request"
        );
        assert_eq!(report.terminal_token_census, k, "batch={batch}: one token per tenant");
    }
}

//! The engine's determinism contract, pinned end-to-end on the real
//! open-cube protocol: same config + seed ⇒ byte-identical traces,
//! whichever event-queue backend runs the simulation. A golden hash
//! guards the fingerprint across refactors.

use opencube::algo::{Config, OpenCubeNode};
use opencube::sim::{
    ArrivalSchedule, DelayModel, QueueBackend, SimConfig, SimDuration, SimTime, World,
};
use opencube::topology::NodeId;
use rand::{rngs::StdRng, SeedableRng};

const DELTA: u64 = 10;
const CS: u64 = 50;

/// A non-trivial scenario: 32 nodes, concurrent uniform load, a crash of
/// the initial root while it matters, and a recovery — exercising
/// deliveries, timers, search_father, regeneration and the trace.
fn traced_run(seed: u64, backend: QueueBackend) -> (u64, u64, u64) {
    let sim = SimConfig {
        delay: DelayModel::Uniform {
            min: SimDuration::from_ticks(1),
            max: SimDuration::from_ticks(DELTA),
        },
        cs_duration: SimDuration::from_ticks(CS),
        seed,
        record_trace: true,
        max_events: 30_000_000,
        queue: backend,
        // Explicitly the reliable-channel defaults: the golden hash below
        // pins that the fault-injection hooks — windowed link faults AND
        // the scripted fault program — change nothing when off.
        faults: opencube::sim::LinkFaults::none(),
        script: opencube::sim::FaultScript::none(),
        driver: opencube::sim::Driver::Serial,
    };
    let cfg = Config::new(32, SimDuration::from_ticks(DELTA), SimDuration::from_ticks(CS))
        .with_contention_slack(SimDuration::from_ticks(2_000));
    let mut world = World::new(sim, OpenCubeNode::build_all(cfg));
    let mut rng = StdRng::seed_from_u64(seed);
    let schedule = ArrivalSchedule::uniform(&mut rng, 32, 60, SimDuration::from_ticks(2_000));
    world.schedule_workload(&schedule);
    world.schedule_failure(SimTime::from_ticks(700), NodeId::new(1));
    world.schedule_recovery(SimTime::from_ticks(15_700), NodeId::new(1));
    assert!(world.run_to_quiescence(), "scenario wedged");
    assert!(
        world.oracle_report().is_clean(),
        "violations: {:?}",
        world.oracle_report().violations()
    );
    (world.trace().hash64(), world.metrics().events_processed, world.metrics().total_sent())
}

#[test]
fn identical_seeds_identical_traces_per_backend() {
    for backend in [QueueBackend::Heap, QueueBackend::Bucketed] {
        assert_eq!(
            traced_run(42, backend),
            traced_run(42, backend),
            "same seed diverged on {backend:?}"
        );
    }
}

#[test]
fn heap_and_bucketed_backends_produce_identical_traces() {
    for seed in [0u64, 1, 7, 42, 0xDEAD_BEEF] {
        let heap = traced_run(seed, QueueBackend::Heap);
        let bucketed = traced_run(seed, QueueBackend::Bucketed);
        assert_eq!(heap, bucketed, "backends diverged at seed {seed}");
    }
}

/// Golden fingerprint: if this changes, the refactor changed observable
/// scheduling behaviour — deliberate changes must update the constant and
/// say so in the commit.
#[test]
fn golden_trace_hash() {
    let (hash, events, sent) = traced_run(42, QueueBackend::Bucketed);
    let (heap_hash, ..) = traced_run(42, QueueBackend::Heap);
    assert_eq!(hash, heap_hash);
    assert_eq!(
        (hash, events, sent),
        (GOLDEN_HASH, GOLDEN_EVENTS, GOLDEN_SENT),
        "trace fingerprint moved — scheduling behaviour changed"
    );
}

// Captured from the first green run of this scenario (seed 42); both
// backends agree on it.
const GOLDEN_HASH: u64 = 17_956_546_835_187_287_862;
const GOLDEN_EVENTS: u64 = 664;
const GOLDEN_SENT: u64 = 380;

//! Cross-protocol conformance of the liveness oracle: a clean,
//! failure-free run of *every* algorithm must pass it.
//!
//! The liveness oracle (`oc_sim::check_liveness`) judges starvation,
//! token conservation and stuck nodes purely through the `Protocol`
//! observers, so it must hold for the open-cube algorithm and all three
//! baselines alike. Pinning the clean-run verdict for all four guards
//! the oracle against false positives: a starvation check that
//! miscounted abandonments, or an idleness check reading the wrong
//! observer, would trip here before it could poison the explorer's
//! batteries.

use opencube::algo::{Config, OpenCubeNode};
use opencube::baselines::{CentralNode, NaimiTrehelNode, RaymondNode};
use opencube::sim::{
    check_liveness, ArrivalSchedule, DelayModel, Protocol, SimConfig, SimDuration, World,
};
use rand::{rngs::StdRng, SeedableRng};

const N: usize = 16;
const DELTA: u64 = 10;
const CS: u64 = 50;

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        delay: DelayModel::Uniform {
            min: SimDuration::from_ticks(1),
            max: SimDuration::from_ticks(DELTA),
        },
        cs_duration: SimDuration::from_ticks(CS),
        seed,
        max_events: 10_000_000,
        ..SimConfig::default()
    }
}

/// Runs `nodes` through a 48-request uniform workload and asserts both
/// oracle suites pass and the liveness accounting closes exactly.
fn assert_clean<P: Protocol + Send>(name: &str, nodes: Vec<P>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let schedule = ArrivalSchedule::uniform(&mut rng, N, 48, SimDuration::from_ticks(120));
    let mut world = World::new(sim_config(seed), nodes);
    world.schedule_workload(&schedule);
    let drained = world.run_to_quiescence();
    assert!(drained, "{name}: clean run must reach quiescence");
    assert!(
        world.oracle_report().is_clean(),
        "{name}: safety violations: {:?}",
        world.oracle_report().violations()
    );
    let report = check_liveness(&world, drained);
    assert!(report.is_clean(), "{name}: liveness violations: {:?}", report.violations());
    assert_eq!(world.metrics().cs_entries, 48, "{name}: every request served");
    assert_eq!(world.metrics().requests_abandoned, 0, "{name}: nothing abandoned");
}

#[test]
fn liveness_oracle_passes_all_protocols_on_clean_runs() {
    for seed in [1u64, 7, 42] {
        let cfg = Config::new(N, SimDuration::from_ticks(DELTA), SimDuration::from_ticks(CS))
            .with_contention_slack(SimDuration::from_ticks(2_000));
        assert_clean("open-cube", OpenCubeNode::build_all(cfg), seed);
        assert_clean("raymond", RaymondNode::build_all(N), seed);
        assert_clean("naimi-trehel", NaimiTrehelNode::build_all(N), seed);
        assert_clean("central", CentralNode::build_all(N), seed);
    }
}

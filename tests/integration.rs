//! Workspace-level integration tests: the algorithm, simulator, topology
//! verifier, baselines and threaded runtime working together.

use opencube::algo::{aggregate_stats, father_table, Config, OpenCubeNode};
use opencube::baselines::{CentralNode, NaimiTrehelNode, RaymondNode};
use opencube::sim::{
    ArrivalSchedule, FailurePlan, Protocol, SimConfig, SimDuration, SimTime, World,
};
use opencube::topology::{invariant, NodeId};
use rand::{rngs::StdRng, SeedableRng};

const DELTA: u64 = 10;
const CS: u64 = 50;

fn ft_config(n: usize, slack: u64) -> Config {
    Config::new(n, SimDuration::from_ticks(DELTA), SimDuration::from_ticks(CS))
        .with_contention_slack(SimDuration::from_ticks(slack))
}

#[test]
fn all_four_algorithms_serve_the_same_workload() {
    let n = 32;
    let count = 100;
    let mut rng = StdRng::seed_from_u64(17);
    let schedule = ArrivalSchedule::uniform(&mut rng, n, count, SimDuration::from_ticks(40));

    let run = |world: &mut dyn FnMut() -> (u64, bool)| world();

    let mut open_cube = || {
        let cfg = Config::without_fault_tolerance(
            n,
            SimDuration::from_ticks(DELTA),
            SimDuration::from_ticks(CS),
        );
        let mut w = World::new(SimConfig::default(), OpenCubeNode::build_all(cfg));
        w.schedule_workload(&schedule);
        assert!(w.run_to_quiescence());
        (w.metrics().cs_entries, w.oracle_report().is_clean())
    };
    let mut raymond = || {
        let mut w = World::new(SimConfig::default(), RaymondNode::build_all(n));
        w.schedule_workload(&schedule);
        assert!(w.run_to_quiescence());
        (w.metrics().cs_entries, w.oracle_report().is_clean())
    };
    let mut naimi = || {
        let mut w = World::new(SimConfig::default(), NaimiTrehelNode::build_all(n));
        w.schedule_workload(&schedule);
        assert!(w.run_to_quiescence());
        (w.metrics().cs_entries, w.oracle_report().is_clean())
    };
    let mut central = || {
        let mut w = World::new(SimConfig::default(), CentralNode::build_all(n));
        w.schedule_workload(&schedule);
        assert!(w.run_to_quiescence());
        (w.metrics().cs_entries, w.oracle_report().is_clean())
    };

    for f in
        [&mut open_cube as &mut dyn FnMut() -> (u64, bool), &mut raymond, &mut naimi, &mut central]
    {
        let (served, clean) = run(f);
        assert_eq!(served, count as u64);
        assert!(clean);
    }
}

#[test]
fn tree_is_open_cube_at_every_quiescent_point() {
    let n = 64;
    let mut world = World::new(
        SimConfig::default(),
        OpenCubeNode::build_all(Config::without_fault_tolerance(
            n,
            SimDuration::from_ticks(DELTA),
            SimDuration::from_ticks(CS),
        )),
    );
    for raw in (1..=n as u32).chain([5, 64, 33, 17, 2, 64, 1]) {
        world.schedule_request(world.now(), NodeId::new(raw));
        assert!(world.run_to_quiescence());
        let table = father_table(&world);
        assert!(
            invariant::verify_open_cube(&table).is_ok(),
            "tree broken after request from {raw}"
        );
    }
}

#[test]
fn failure_storm_with_full_recovery_restores_an_open_cube() {
    // Crash several distinct nodes (never the whole system), let each
    // recover, keep load flowing. At the end, with every node back up and
    // every claim settled, the father graph must again be a legal
    // open-cube reachable by b-transformations — after all the anomaly
    // repairs triggered by the follow-up sweep of requests.
    let n = 16;
    let mut world = World::new(
        SimConfig { seed: 23, ..SimConfig::default() },
        OpenCubeNode::build_all(ft_config(n, 500)),
    );
    let failures = FailurePlan::none()
        .crash_and_recover(NodeId::new(1), SimTime::from_ticks(100), SimTime::from_ticks(9_000))
        .crash_and_recover(NodeId::new(9), SimTime::from_ticks(20_000), SimTime::from_ticks(29_000))
        .crash_and_recover(
            NodeId::new(5),
            SimTime::from_ticks(40_000),
            SimTime::from_ticks(49_000),
        );
    world.schedule_failures(&failures);
    // Load around each failure window.
    let mut at = 200u64;
    for raw in [10u32, 12, 3, 7, 14, 2, 8, 16, 4, 6] {
        world.schedule_request(SimTime::from_ticks(at), NodeId::new(raw));
        at += 6_000;
    }
    // A final full sweep (everyone requests) flushes out every stale
    // pointer via the anomaly mechanism.
    let mut t = 100_000u64;
    for raw in 1..=n as u32 {
        world.schedule_request(SimTime::from_ticks(t), NodeId::new(raw));
        t += 3_000;
    }
    assert!(world.run_to_quiescence());
    assert!(world.oracle_report().is_clean(), "{:?}", world.oracle_report());
    // Exactly one token.
    let holders = NodeId::all(n).filter(|id| world.node(*id).holds_token()).count();
    assert_eq!(holders, 1);
    // And everyone is consistently attached: requests from every node were
    // served in the final sweep.
    let stats = aggregate_stats(&world);
    assert!(stats.searches_started > 0, "failures must have triggered searches");
}

#[test]
fn simulator_and_threaded_runtime_agree_on_outcomes() {
    use opencube::runtime::{Runtime, RuntimeConfig};
    use std::time::Duration;

    let n = 8;
    // Simulator run.
    let mut world = World::new(SimConfig::default(), OpenCubeNode::build_all(ft_config(n, 20_000)));
    for i in 1..=n as u32 {
        world.schedule_request(SimTime::from_ticks(u64::from(i) * 10), NodeId::new(i));
    }
    assert!(world.run_to_quiescence());
    assert_eq!(world.metrics().cs_entries, n as u64);
    assert!(world.oracle_report().is_clean());

    // Threaded run of the same protocol and workload shape.
    let config = Config::new(n, SimDuration::from_ticks(40), SimDuration::from_ticks(20))
        .with_contention_slack(SimDuration::from_ticks(50_000));
    let rt = Runtime::start(RuntimeConfig::default(), OpenCubeNode::build_all(config));
    for i in 1..=n as u32 {
        rt.request_cs(NodeId::new(i));
    }
    assert!(rt.await_cs_entries(n as u64, Duration::from_secs(60)));
    assert!(rt.await_settled(Duration::from_secs(60)));
    let report = rt.shutdown();
    assert_eq!(report.cs_entries, n as u64);
    assert!(report.is_clean(), "oracles: {report:?}");
}

#[test]
fn analysis_predictions_match_simulation() {
    // The exact α_p prediction against a fresh measurement (E2 at n = 32),
    // through the public APIs only.
    let n = 32;
    let mut total = 0u64;
    for raw in 1..=n as u32 {
        let mut world = World::new(
            SimConfig::default(),
            OpenCubeNode::build_all(Config::without_fault_tolerance(
                n,
                SimDuration::from_ticks(DELTA),
                SimDuration::from_ticks(CS),
            )),
        );
        world.schedule_request(SimTime::ZERO, NodeId::new(raw));
        assert!(world.run_to_quiescence());
        total += world.metrics().total_sent();
    }
    assert_eq!(total, opencube::analysis::alpha(5));
    let avg = total as f64 / n as f64;
    let closed = opencube::analysis::average_messages_closed_form(n);
    assert!((avg - closed).abs() < 0.5, "avg {avg} vs closed form {closed}");
}

#[test]
fn fairness_no_request_starves_under_sustained_load() {
    // One node requests repeatedly while all others request once; everyone
    // must get in (the queue policy is FIFO, hence fair).
    let n = 16;
    let mut world = World::new(
        SimConfig { seed: 5, ..SimConfig::default() },
        OpenCubeNode::build_all(Config::without_fault_tolerance(
            n,
            SimDuration::from_ticks(DELTA),
            SimDuration::from_ticks(CS),
        )),
    );
    let schedule = ArrivalSchedule::repeated(NodeId::new(2), 30, SimDuration::from_ticks(20));
    world.schedule_workload(&schedule);
    for raw in 1..=n as u32 {
        world.schedule_request(SimTime::from_ticks(u64::from(raw) * 35), NodeId::new(raw));
    }
    assert!(world.run_to_quiescence());
    assert_eq!(world.metrics().cs_entries, world.requests_injected());
    assert!(world.oracle_report().is_clean());
}

#[test]
fn simultaneous_failures_are_all_repaired() {
    // Section 5, "Case of several failures": several nodes can fail
    // simultaneously provided the network is not partitioned (which our
    // fully-connected channel model guarantees). All failed nodes are
    // eliminated from the remaining open-cube as their descendants issue
    // requests and run search_father.
    let n = 32;
    for seed in 0..3u64 {
        let mut world = World::new(
            SimConfig { seed, ..SimConfig::default() },
            OpenCubeNode::build_all(ft_config(n, 500)),
        );
        // Three simultaneous crashes, including the root holding the token.
        for victim in [1u32, 9, 13] {
            world.schedule_failure(SimTime::from_ticks(50), NodeId::new(victim));
        }
        // Sons and grandsons of the victims request, plus bystanders.
        for (i, raw) in [10u32, 14, 2, 25, 5, 31].into_iter().enumerate() {
            world.schedule_request(SimTime::from_ticks(100 + i as u64 * 4_000), NodeId::new(raw));
        }
        assert!(world.run_to_quiescence(), "seed={seed}");
        assert!(world.oracle_report().is_clean(), "seed={seed}: {:?}", world.oracle_report());
        assert_eq!(world.metrics().cs_entries, world.requests_injected(), "seed={seed}");
        // Exactly one token among live nodes.
        let holders = NodeId::all(n)
            .filter(|id| world.is_alive(*id) && world.node(*id).holds_token())
            .count();
        assert_eq!(holders, 1, "seed={seed}");
        // The token-holding root lost with node 1 was regenerated exactly once.
        assert_eq!(aggregate_stats(&world).tokens_regenerated, 1, "seed={seed}");
    }
}

#[test]
fn wire_codec_round_trips_live_traffic() {
    // Encode/decode every message a real run produces: the codec and the
    // protocol agree on the full value space actually exercised.
    use opencube::algo::codec::{decode, encode};
    use opencube::sim::{Action, MessageKind, NodeEvent, Outbox};

    let n = 16;
    let cfg = ft_config(n, 500);
    let mut nodes = OpenCubeNode::build_all(cfg);
    let mut outbox = Outbox::new();
    // Drive a few hand-written events through nodes and round-trip every
    // send through the codec.
    let mut checked = 0;
    for raw in 2..=n as u32 {
        nodes[raw as usize - 1].on_event(NodeEvent::RequestCs, &mut outbox);
        for action in outbox.drain() {
            if let Action::Send { msg, .. } = action {
                let bytes = encode(&msg);
                let decoded = decode(&bytes).expect("decode");
                assert_eq!(decoded, msg);
                assert_eq!(decoded.kind(), msg.kind());
                checked += 1;
            }
        }
    }
    assert!(checked > 0);
}

//! Serial/windowed driver equivalence, pinned end-to-end on the real
//! open-cube protocol.
//!
//! The conservative windowed driver promises *byte-identical* results to
//! the serial driver at any thread count — same traces, same metrics,
//! same oracle judgement. These tests hold it to that promise:
//!
//! * a property sweep over randomized scenarios (sizes, loads, delay
//!   models, crash/recovery) comparing every observable across drivers;
//! * a burst scenario at n = 4096 — every node requests in the same
//!   tick, so the first windows hold thousands of events and the
//!   parallel phase actually runs — pinned to a golden fingerprint
//!   shared by the serial and windowed drivers.

use opencube::algo::{Config, OpenCubeNode};
use opencube::sim::{ArrivalSchedule, DelayModel, Driver, SimConfig, SimDuration, SimTime, World};
use opencube::topology::NodeId;
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Every observable a driver can influence: trace fingerprint, event and
/// send counts, CS entries, waiting ticks, and the oracle's judgement.
fn fingerprint(world: &World<OpenCubeNode>) -> (u64, u64, u64, u64, u64, bool) {
    (
        world.trace().hash64(),
        world.metrics().events_processed,
        world.metrics().total_sent(),
        world.metrics().cs_entries,
        world.metrics().total_waiting_ticks,
        world.oracle_report().is_clean(),
    )
}

/// Runs one scenario under the given driver and returns its fingerprint.
#[allow(clippy::too_many_arguments)]
fn run(
    n: usize,
    seed: u64,
    delay: DelayModel,
    cs: u64,
    requests: usize,
    gap: u64,
    crash: bool,
    driver: Driver,
) -> (u64, u64, u64, u64, u64, bool) {
    let delta = match delay {
        DelayModel::Constant(d) => d.ticks(),
        DelayModel::Uniform { max, .. } => max.ticks(),
    };
    let sim = SimConfig {
        delay,
        cs_duration: SimDuration::from_ticks(cs),
        seed,
        record_trace: true,
        max_events: 50_000_000,
        driver,
        ..SimConfig::default()
    };
    let cfg = Config::new(n, SimDuration::from_ticks(delta), SimDuration::from_ticks(cs))
        .with_contention_slack(SimDuration::from_ticks(2_000));
    let mut world = World::new(sim, OpenCubeNode::build_all(cfg));
    let mut rng = StdRng::seed_from_u64(seed);
    let schedule = ArrivalSchedule::uniform(&mut rng, n, requests, SimDuration::from_ticks(gap));
    world.schedule_workload(&schedule);
    if crash {
        // Crash the initial root while it matters, then bring it back:
        // barrier events inside windowed runs, regeneration on both.
        world.schedule_failure(SimTime::from_ticks(700), NodeId::new(1));
        world.schedule_recovery(SimTime::from_ticks(15_700), NodeId::new(1));
    }
    assert!(world.run_to_quiescence(), "scenario wedged under {driver:?}");
    fingerprint(&world)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized scenarios: the windowed driver is indistinguishable
    /// from the serial one at 2 and 4 threads, under both single-tick
    /// lookahead (uniform delays) and wide lookahead (constant delays),
    /// with and without a crash/recovery barrier.
    #[test]
    fn windowed_matches_serial(
        p in 2u32..=6,
        seed in 0u64..u64::MAX,
        requests in 1usize..60,
        gap in 5u64..300,
        constant_delay in proptest::bool::ANY,
        crash in proptest::bool::ANY,
    ) {
        let n = 1usize << p;
        let delay = if constant_delay {
            DelayModel::Constant(SimDuration::from_ticks(10))
        } else {
            DelayModel::Uniform {
                min: SimDuration::from_ticks(1),
                max: SimDuration::from_ticks(10),
            }
        };
        let serial = run(n, seed, delay, 50, requests, gap, crash, Driver::Serial);
        for threads in [2usize, 4] {
            let windowed =
                run(n, seed, delay, 50, requests, gap, crash, Driver::Windowed { threads });
            prop_assert_eq!(
                serial, windowed,
                "drivers diverged: n={}, seed={}, threads={}", n, seed, threads
            );
        }
    }
}

/// A burst at n = 4096: every node requests within the first tick, so
/// early windows hold thousands of events and the parallel phase runs
/// for real (the fallback threshold is 128).
fn burst_run(driver: Driver) -> (u64, u64, u64, u64, u64, bool) {
    const N: usize = 4096;
    let sim = SimConfig {
        delay: DelayModel::Uniform {
            min: SimDuration::from_ticks(1),
            max: SimDuration::from_ticks(10),
        },
        cs_duration: SimDuration::from_ticks(3),
        seed: 7,
        record_trace: true,
        max_events: 50_000_000,
        driver,
        ..SimConfig::default()
    };
    let cfg = Config::new(N, SimDuration::from_ticks(10), SimDuration::from_ticks(3))
        .with_contention_slack(SimDuration::from_ticks(200_000));
    let mut world = World::new(sim, OpenCubeNode::build_all(cfg));
    for id in NodeId::all(N) {
        world.schedule_request(SimTime::from_ticks(0), id);
    }
    assert!(world.run_to_quiescence(), "burst wedged under {driver:?}");
    fingerprint(&world)
}

/// Golden fingerprint for the burst, shared by every driver. If this
/// changes, observable scheduling behaviour changed — deliberate changes
/// must update the constant and say so in the commit message.
const BURST_GOLDEN_HASH: u64 = 10_957_471_484_205_330_809;
const BURST_GOLDEN_EVENTS: u64 = 61_412;

#[test]
fn burst_cross_driver_golden() {
    let serial = burst_run(Driver::Serial);
    for threads in [2usize, 8] {
        let windowed = burst_run(Driver::Windowed { threads });
        assert_eq!(serial, windowed, "burst diverged at {threads} threads");
    }
    assert!(serial.5, "burst run violated the oracle");
    assert_eq!(
        (serial.0, serial.1),
        (BURST_GOLDEN_HASH, BURST_GOLDEN_EVENTS),
        "burst fingerprint moved: hash={} events={}",
        serial.0,
        serial.1
    );
}

//! Workspace-level property tests: randomized workloads and failure plans
//! against the safety/liveness oracles, across all algorithms.

use opencube::algo::{father_table, Config, OpenCubeNode};
use opencube::baselines::{NaimiTrehelNode, RaymondNode};
use opencube::sim::{
    ArrivalSchedule, DelayModel, Protocol, SimConfig, SimDuration, SimTime, World,
};
use opencube::topology::{invariant, NodeId};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

const DELTA: u64 = 10;
const CS: u64 = 50;

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        delay: DelayModel::Uniform {
            min: SimDuration::from_ticks(1),
            max: SimDuration::from_ticks(DELTA),
        },
        cs_duration: SimDuration::from_ticks(CS),
        seed,
        record_trace: false,
        max_events: 30_000_000,
        ..SimConfig::default()
    }
}

/// Strategy: system size, request count, gap and seed.
fn scenario() -> impl Strategy<Value = (usize, usize, u64, u64)> {
    (1u32..=6, 1usize..60, 5u64..300, 0u64..u64::MAX)
        .prop_map(|(p, count, gap, seed)| (1usize << p, count, gap, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Open-cube without failures: every request served, mutual exclusion
    /// clean, tree a legal open-cube at quiescence.
    #[test]
    fn open_cube_safety_liveness((n, count, gap, seed) in scenario()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = ArrivalSchedule::uniform(&mut rng, n, count, SimDuration::from_ticks(gap));
        let cfg = Config::without_fault_tolerance(
            n,
            SimDuration::from_ticks(DELTA),
            SimDuration::from_ticks(CS),
        );
        let mut world = World::new(sim_config(seed), OpenCubeNode::build_all(cfg));
        world.schedule_workload(&schedule);
        prop_assert!(world.run_to_quiescence());
        prop_assert!(world.oracle_report().is_clean());
        prop_assert_eq!(world.metrics().cs_entries, count as u64);
        prop_assert!(invariant::verify_open_cube(&father_table(&world)).is_ok());
        // Exactly one token at rest.
        let holders = NodeId::all(n).filter(|id| world.node(*id).holds_token()).count();
        prop_assert_eq!(holders, 1);
    }

    /// Raymond under the same scenarios.
    #[test]
    fn raymond_safety_liveness((n, count, gap, seed) in scenario()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = ArrivalSchedule::uniform(&mut rng, n, count, SimDuration::from_ticks(gap));
        let mut world = World::new(sim_config(seed), RaymondNode::build_all(n));
        world.schedule_workload(&schedule);
        prop_assert!(world.run_to_quiescence());
        prop_assert!(world.oracle_report().is_clean());
        prop_assert_eq!(world.metrics().cs_entries, count as u64);
    }

    /// Naimi-Trehel under the same scenarios.
    #[test]
    fn naimi_trehel_safety_liveness((n, count, gap, seed) in scenario()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = ArrivalSchedule::uniform(&mut rng, n, count, SimDuration::from_ticks(gap));
        let mut world = World::new(sim_config(seed), NaimiTrehelNode::build_all(n));
        world.schedule_workload(&schedule);
        prop_assert!(world.run_to_quiescence());
        prop_assert!(world.oracle_report().is_clean());
        prop_assert_eq!(world.metrics().cs_entries, count as u64);
    }

    /// Open-cube with a random single crash + recovery under load: the
    /// oracle stays clean (timing assumptions hold thanks to the slack)
    /// and the system keeps serving afterwards.
    #[test]
    fn open_cube_single_failure(
        (n, count, seed) in (2u32..=5, 4usize..30, 0u64..u64::MAX)
            .prop_map(|(p, c, s)| (1usize << p, c, s)),
        victim_raw in 2u32..32,
        crash_at in 50u64..5_000,
    ) {
        let n32 = n as u32;
        let victim = NodeId::new(victim_raw % n32 + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule =
            ArrivalSchedule::uniform(&mut rng, n, count, SimDuration::from_ticks(2_000));
        let cfg = Config::new(n, SimDuration::from_ticks(DELTA), SimDuration::from_ticks(CS))
            .with_contention_slack(SimDuration::from_ticks(1_000));
        let mut world = World::new(sim_config(seed), OpenCubeNode::build_all(cfg));
        world.schedule_workload(&schedule);
        world.schedule_failure(SimTime::from_ticks(crash_at), victim);
        world.schedule_recovery(SimTime::from_ticks(crash_at + 15_000), victim);
        // A probe request well after recovery must be serveable.
        let prober = NodeId::new(victim.get() % n32 + 1);
        world.schedule_request(SimTime::from_ticks(200_000), prober);
        prop_assert!(world.run_to_quiescence());
        prop_assert!(world.oracle_report().is_clean(),
            "violations: {:?}", world.oracle_report().violations());
        // One live token at the end.
        let holders = NodeId::all(n)
            .filter(|id| world.is_alive(*id) && world.node(*id).holds_token())
            .count();
        prop_assert_eq!(holders, 1);
        // Only requests from the crash window can be lost.
        prop_assert!(world.metrics().cs_entries + 4 >= world.requests_injected());
    }

    /// The message-per-request worst case bound holds on random evolved
    /// trees (paper accounting).
    #[test]
    fn worst_case_bound_random_trees(
        (n, seed) in (1u32..=6, 0u64..u64::MAX).prop_map(|(p, s)| (1usize << p, s)),
        warmup in 0usize..40,
    ) {
        let cfg = Config::without_fault_tolerance(
            n,
            SimDuration::from_ticks(DELTA),
            SimDuration::from_ticks(CS),
        );
        let mut world = World::new(sim_config(seed), OpenCubeNode::build_all(cfg));
        let mut rng = StdRng::seed_from_u64(seed);
        // Random warmup to evolve the tree.
        let warm = ArrivalSchedule::uniform(&mut rng, n, warmup, SimDuration::from_ticks(1_000));
        world.schedule_workload(&warm);
        prop_assert!(world.run_to_quiescence());
        let before = world.metrics().total_sent();
        // One measured request.
        let requester = NodeId::new((seed % n as u64) as u32 + 1);
        world.schedule_request(world.now(), requester);
        prop_assert!(world.run_to_quiescence());
        let cost = world.metrics().total_sent() - before;
        let paper_cost = if world.node(requester).believes_root() {
            cost
        } else {
            cost.saturating_sub(1)
        };
        let bound = u64::from(n.trailing_zeros()) + 1;
        prop_assert!(paper_cost <= bound, "cost {paper_cost} > bound {bound} at n={n}");
    }
}
